//===- support/Budget.cpp - Wall-clock budgets and failure info ------------===//

#include "support/Budget.h"

#include <algorithm>
#include <limits>

using namespace chute;

Budget::Budget() : Node(std::make_shared<CancelNode>()) {}

Budget Budget::unlimited() { return Budget(); }

Budget Budget::forMillis(std::uint64_t Ms) {
  Budget B;
  B.Unlimited = false;
  B.Deadline = Clock::now() + std::chrono::milliseconds(Ms);
  return B;
}

Budget Budget::subMillis(std::uint64_t Ms) const {
  Budget B;
  B.Node = Node; // one cancellation domain per run
  B.Unlimited = false;
  std::uint64_t Slice =
      Unlimited ? Ms
                : std::min<std::uint64_t>(
                      Ms, static_cast<std::uint64_t>(remainingMs()));
  B.Deadline = Clock::now() + std::chrono::milliseconds(Slice);
  return B;
}

Budget Budget::subFraction(double Fraction) const {
  Fraction = std::clamp(Fraction, 0.0, 1.0);
  if (Unlimited) {
    Budget B;
    B.Node = Node;
    return B; // a fraction of forever is forever
  }
  return subMillis(static_cast<std::uint64_t>(
      static_cast<double>(remainingMs()) * Fraction));
}

Budget Budget::childDomain() const {
  Budget B = *this;
  B.Node = std::make_shared<CancelNode>();
  B.Node->Parent = Node;
  return B;
}

std::int64_t Budget::remainingMs() const {
  if (Unlimited)
    return std::numeric_limits<std::int64_t>::max() / 4;
  auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  Deadline - Clock::now())
                  .count();
  return Left < 0 ? 0 : Left;
}

bool Budget::expired() const {
  if (cancelled())
    return true;
  return !Unlimited && remainingMs() == 0;
}

unsigned Budget::queryTimeoutMs(unsigned CapMs) const {
  if (Unlimited)
    return CapMs;
  auto Left = static_cast<std::uint64_t>(remainingMs());
  std::uint64_t T =
      CapMs == 0 ? Left : std::min<std::uint64_t>(CapMs, Left);
  return static_cast<unsigned>(std::max<std::uint64_t>(T, MinQueryMs));
}

const char *chute::toString(FailPhase P) {
  switch (P) {
  case FailPhase::None:
    return "none";
  case FailPhase::Parse:
    return "parse";
  case FailPhase::UniversalProof:
    return "universal-proof";
  case FailPhase::ChuteSynthesis:
    return "chute-synthesis";
  case FailPhase::RcrCheck:
    return "rcr-check";
  case FailPhase::QuantElim:
    return "quant-elim";
  case FailPhase::PathSearch:
    return "path-search";
  case FailPhase::Refinement:
    return "refinement";
  case FailPhase::ChcEncoding:
    return "chc-encoding";
  case FailPhase::Portfolio:
    return "portfolio";
  }
  return "?";
}

const char *chute::toString(FailResource R) {
  switch (R) {
  case FailResource::None:
    return "none";
  case FailResource::WallClock:
    return "wall-clock";
  case FailResource::Cancelled:
    return "cancelled";
  case FailResource::Rounds:
    return "rounds";
  case FailResource::SolverUnknown:
    return "solver-unknown";
  case FailResource::Incomplete:
    return "incompleteness";
  case FailResource::Disagreement:
    return "backend-disagreement";
  }
  return "?";
}

std::string FailureInfo::toString() const {
  if (!valid())
    return "no failure";
  std::string S = chute::toString(Phase);
  S += " ran out of ";
  S += chute::toString(Resource);
  if (!Obligation.empty()) {
    S += " on ";
    S += Obligation;
  }
  if (!Detail.empty()) {
    S += ": ";
    S += Detail;
  }
  return S;
}
