//===- support/FileUtil.cpp - File I/O and locking helpers -----------------===//

#include "support/FileUtil.h"

#include "support/Debug.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace chute;

std::optional<std::string> chute::readFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (F == nullptr)
    return std::nullopt;
  std::string Out;
  char Buf[1 << 14];
  for (;;) {
    std::size_t N = std::fread(Buf, 1, sizeof(Buf), F);
    Out.append(Buf, N);
    if (N < sizeof(Buf))
      break;
  }
  bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  if (!Ok)
    return std::nullopt;
  return Out;
}

namespace {
/// Distinguishes temporaries of concurrent writers within one
/// process; the pid distinguishes processes. Monotone for the
/// process lifetime so a name can never be reissued.
std::atomic<std::uint64_t> TempCounter{0};

std::string dirOf(const std::string &Path) {
  std::size_t Slash = Path.rfind('/');
  return Slash == std::string::npos ? std::string(".")
                                    : Path.substr(0, Slash);
}
} // namespace

std::string chute::detail::nextTempPath(const std::string &Path) {
  return Path + ".tmp." + std::to_string(static_cast<long>(getpid())) +
         "." + std::to_string(TempCounter.fetch_add(1));
}

bool chute::fsyncDir(const std::string &Dir) {
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return false;
  int Rc = ::fsync(Fd);
  ::close(Fd);
  return Rc == 0;
}

bool chute::atomicWriteFile(const std::string &Path,
                            const std::string &Contents) {
  // O_EXCL: if a dead process with a recycled pid left a temporary
  // behind, fail onto a fresh counter value instead of appending to
  // (or truncating under) someone else's bytes.
  std::string Tmp;
  int Fd = -1;
  for (int Attempt = 0; Attempt < 16 && Fd < 0; ++Attempt) {
    Tmp = detail::nextTempPath(Path);
    Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (Fd < 0 && errno != EEXIST)
      return false;
  }
  if (Fd < 0)
    return false;
  const char *P = Contents.data();
  std::size_t Left = Contents.size();
  while (Left > 0) {
    ssize_t N = ::write(Fd, P, Left);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      ::unlink(Tmp.c_str());
      return false;
    }
    P += N;
    Left -= static_cast<std::size_t>(N);
  }
  // Data must be durable before the rename publishes it, or a crash
  // could leave the published name pointing at truncated content;
  // and the directory must be synced after it, or the publish itself
  // (the rename) can be lost even though the data survived.
  if (::fsync(Fd) != 0 || ::close(Fd) != 0 ||
      ::rename(Tmp.c_str(), Path.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    return false;
  }
  return fsyncDir(dirOf(Path));
}

bool chute::ensureDir(const std::string &Path) {
  if (Path.empty())
    return false;
  if (::mkdir(Path.c_str(), 0755) == 0 || errno == EEXIST) {
    struct stat St;
    return ::stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode);
  }
  return false;
}

FileLock::FileLock(const std::string &Path, Mode M) {
  Fd = ::open(Path.c_str(), O_RDWR | O_CREAT, 0644);
  if (Fd < 0) {
    CHUTE_DEBUG(debugLine("FileLock: open(" + Path +
                          ") failed: " + std::strerror(errno) +
                          " — proceeding unlocked"));
    return;
  }
  int Op = M == Mode::Exclusive ? LOCK_EX : LOCK_SH;
  while (::flock(Fd, Op) != 0) {
    if (errno != EINTR) {
      CHUTE_DEBUG(debugLine("FileLock: flock(" + Path +
                            ") failed: " + std::strerror(errno) +
                            " — proceeding unlocked"));
      ::close(Fd);
      Fd = -1;
      return;
    }
  }
}

FileLock::~FileLock() {
  if (Fd >= 0) {
    ::flock(Fd, LOCK_UN);
    ::close(Fd);
  }
}
