//===- support/FileUtil.cpp - File I/O and locking helpers -----------------===//

#include "support/FileUtil.h"

#include <cerrno>
#include <cstdio>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace chute;

std::optional<std::string> chute::readFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (F == nullptr)
    return std::nullopt;
  std::string Out;
  char Buf[1 << 14];
  for (;;) {
    std::size_t N = std::fread(Buf, 1, sizeof(Buf), F);
    Out.append(Buf, N);
    if (N < sizeof(Buf))
      break;
  }
  bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  if (!Ok)
    return std::nullopt;
  return Out;
}

bool chute::atomicWriteFile(const std::string &Path,
                            const std::string &Contents) {
  std::string Tmp =
      Path + ".tmp." + std::to_string(static_cast<long>(getpid()));
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return false;
  const char *P = Contents.data();
  std::size_t Left = Contents.size();
  while (Left > 0) {
    ssize_t N = ::write(Fd, P, Left);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      ::unlink(Tmp.c_str());
      return false;
    }
    P += N;
    Left -= static_cast<std::size_t>(N);
  }
  // Data must be durable before the rename publishes it, or a crash
  // could leave the published name pointing at truncated content.
  if (::fsync(Fd) != 0 || ::close(Fd) != 0 ||
      ::rename(Tmp.c_str(), Path.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    return false;
  }
  return true;
}

bool chute::ensureDir(const std::string &Path) {
  if (Path.empty())
    return false;
  if (::mkdir(Path.c_str(), 0755) == 0 || errno == EEXIST) {
    struct stat St;
    return ::stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode);
  }
  return false;
}

FileLock::FileLock(const std::string &Path) {
  Fd = ::open(Path.c_str(), O_RDWR | O_CREAT, 0644);
  if (Fd < 0)
    return;
  while (::flock(Fd, LOCK_EX) != 0) {
    if (errno != EINTR) {
      ::close(Fd);
      Fd = -1;
      return;
    }
  }
}

FileLock::~FileLock() {
  if (Fd >= 0) {
    ::flock(Fd, LOCK_UN);
    ::close(Fd);
  }
}
