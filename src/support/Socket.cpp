//===- support/Socket.cpp - SIGPIPE-safe socket utilities ------------------===//

#include "support/Socket.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#ifndef POLLRDHUP
#define POLLRDHUP 0
#endif

using namespace chute;

void chute::ignoreSigpipe() {
  static const bool Done = [] {
    struct sigaction SA;
    std::memset(&SA, 0, sizeof(SA));
    SA.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &SA, nullptr);
    return true;
  }();
  (void)Done;
}

const char *chute::toString(IoStatus S) {
  switch (S) {
  case IoStatus::Ok:
    return "ok";
  case IoStatus::Eof:
    return "eof";
  case IoStatus::Closed:
    return "closed";
  case IoStatus::TimedOut:
    return "timed-out";
  case IoStatus::Error:
    return "error";
  }
  return "?";
}

std::optional<Endpoint> Endpoint::parse(const std::string &Spec,
                                        std::string &Err) {
  Endpoint E;
  std::string Rest = Spec;
  if (Spec.rfind("unix:", 0) == 0) {
    Rest = Spec.substr(5);
  } else if (Spec.rfind("tcp:", 0) == 0) {
    Rest = Spec.substr(4);
    std::size_t Colon = Rest.rfind(':');
    if (Colon == std::string::npos || Colon == 0 ||
        Colon + 1 == Rest.size()) {
      Err = "tcp endpoint needs host:port: " + Spec;
      return std::nullopt;
    }
    E.K = Kind::Tcp;
    E.Host = Rest.substr(0, Colon);
    std::string PortStr = Rest.substr(Colon + 1);
    char *End = nullptr;
    unsigned long P = std::strtoul(PortStr.c_str(), &End, 10);
    if (End == nullptr || *End != '\0' || P > 65535) {
      Err = "bad tcp port: " + PortStr;
      return std::nullopt;
    }
    E.Port = static_cast<unsigned>(P);
    return E;
  }
  if (Rest.empty()) {
    Err = "empty unix socket path";
    return std::nullopt;
  }
  sockaddr_un SUN;
  if (Rest.size() >= sizeof(SUN.sun_path)) {
    Err = "unix socket path too long (" + std::to_string(Rest.size()) +
          " bytes): " + Rest;
    return std::nullopt;
  }
  E.K = Kind::Unix;
  E.Path = Rest;
  return E;
}

std::string Endpoint::toString() const {
  if (K == Kind::Unix)
    return "unix:" + Path;
  return "tcp:" + Host + ":" + std::to_string(Port);
}

namespace {

int listenUnix(const Endpoint &E, std::string &Err) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, E.Path.c_str(), sizeof(Addr.sun_path) - 1);
  ::unlink(E.Path.c_str()); // stale socket from a previous run
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 64) != 0) {
    Err = "bind/listen " + E.Path + ": " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int listenTcp(const Endpoint &E, std::string &Err) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<std::uint16_t>(E.Port));
  if (E.Host.empty() || E.Host == "*") {
    Addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, E.Host.c_str(), &Addr.sin_addr) != 1) {
    Err = "bad listen host (numeric IPv4 or * expected): " + E.Host;
    ::close(Fd);
    return -1;
  }
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 64) != 0) {
    Err = "bind/listen " + E.toString() + ": " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

} // namespace

int chute::listenEndpoint(const Endpoint &E, std::string &Err) {
  return E.K == Endpoint::Kind::Unix ? listenUnix(E, Err)
                                     : listenTcp(E, Err);
}

int chute::connectEndpoint(const Endpoint &E, std::string &Err) {
  if (E.K == Endpoint::Kind::Unix) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0) {
      Err = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, E.Path.c_str(),
                 sizeof(Addr.sun_path) - 1);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                  sizeof(Addr)) != 0) {
      Err = "connect " + E.Path + ": " + std::strerror(errno);
      ::close(Fd);
      return -1;
    }
    return Fd;
  }

  addrinfo Hints;
  std::memset(&Hints, 0, sizeof(Hints));
  Hints.ai_family = AF_INET;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Res = nullptr;
  std::string PortStr = std::to_string(E.Port);
  int Rc = ::getaddrinfo(E.Host.empty() ? "127.0.0.1" : E.Host.c_str(),
                         PortStr.c_str(), &Hints, &Res);
  if (Rc != 0 || Res == nullptr) {
    Err = "resolve " + E.Host + ": " + ::gai_strerror(Rc);
    return -1;
  }
  int Fd = -1;
  for (addrinfo *A = Res; A != nullptr; A = A->ai_next) {
    Fd = ::socket(A->ai_family, A->ai_socktype, A->ai_protocol);
    if (Fd < 0)
      continue;
    if (::connect(Fd, A->ai_addr, A->ai_addrlen) == 0)
      break;
    ::close(Fd);
    Fd = -1;
  }
  ::freeaddrinfo(Res);
  if (Fd < 0)
    Err = "connect " + E.toString() + ": " + std::strerror(errno);
  return Fd;
}

unsigned chute::boundTcpPort(int Fd) {
  sockaddr_in Addr;
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0 ||
      Addr.sin_family != AF_INET)
    return 0;
  return ntohs(Addr.sin_port);
}

IoStatus chute::sendAll(int Fd, const void *Buf, std::size_t Len) {
  const char *P = static_cast<const char *>(Buf);
  while (Len > 0) {
    ssize_t N = ::send(Fd, P, Len, MSG_NOSIGNAL);
    if (N < 0 && errno == ENOTSOCK)
      N = ::write(Fd, P, Len); // pipes: rely on ignoreSigpipe()
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EPIPE || errno == ECONNRESET)
        return IoStatus::Closed;
      return IoStatus::Error;
    }
    P += N;
    Len -= static_cast<std::size_t>(N);
  }
  return IoStatus::Ok;
}

RecvResult chute::recvAll(int Fd, void *Buf, std::size_t Len,
                          int TimeoutMs) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(TimeoutMs > 0 ? TimeoutMs : 0);
  char *P = static_cast<char *>(Buf);
  RecvResult R;
  R.N = 0;
  while (R.N < Len) {
    int Wait = -1;
    if (TimeoutMs > 0) {
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
          Deadline - Clock::now());
      if (Left.count() <= 0) {
        R.St = IoStatus::TimedOut;
        return R;
      }
      Wait = static_cast<int>(Left.count());
    }
    pollfd Pfd{Fd, POLLIN, 0};
    int Pr = ::poll(&Pfd, 1, Wait);
    if (Pr < 0) {
      if (errno == EINTR)
        continue;
      R.St = IoStatus::Error;
      return R;
    }
    if (Pr == 0) {
      R.St = IoStatus::TimedOut;
      return R;
    }
    ssize_t N = ::recv(Fd, P + R.N, Len - R.N, 0);
    if (N < 0 && errno == ENOTSOCK)
      N = ::read(Fd, P + R.N, Len - R.N);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      R.St = errno == ECONNRESET ? IoStatus::Closed : IoStatus::Error;
      return R;
    }
    if (N == 0) {
      R.St = IoStatus::Eof;
      return R;
    }
    R.N += static_cast<std::size_t>(N);
  }
  R.St = IoStatus::Ok;
  return R;
}

bool chute::peerHungUp(int Fd) {
  pollfd Pfd{Fd, POLLRDHUP, 0};
  if (::poll(&Pfd, 1, 0) <= 0)
    return false;
  return (Pfd.revents & (POLLRDHUP | POLLHUP | POLLERR | POLLNVAL)) != 0;
}
