//===- support/Debug.h - Opt-in debug logging -----------------*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight debug logging controlled by the CHUTE_DEBUG environment
/// variable (set it to any non-empty value to enable). Modeled after
/// LLVM_DEBUG but without global registration.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_SUPPORT_DEBUG_H
#define CHUTE_SUPPORT_DEBUG_H

#include <string>

namespace chute {

/// Returns true when debug logging is enabled via CHUTE_DEBUG.
bool debugEnabled();

/// Writes one line of debug output (with trailing newline) to stderr.
void debugLine(const std::string &Msg);

} // namespace chute

/// Executes \p X only when debug logging is enabled.
#define CHUTE_DEBUG(X)                                                         \
  do {                                                                         \
    if (::chute::debugEnabled()) {                                             \
      X;                                                                       \
    }                                                                          \
  } while (false)

#endif // CHUTE_SUPPORT_DEBUG_H
