//===- support/Debug.cpp - Opt-in debug logging ---------------------------===//

#include "support/Debug.h"

#include "support/Env.h"

#include <cstdio>

using namespace chute;

bool chute::debugEnabled() {
  // CHUTE_DEBUG through the shared env helpers: set-and-truthy
  // enables, "0"/"false"/"off"/"no"/empty do not.
  static const bool Enabled = envFlag("CHUTE_DEBUG").value_or(false);
  return Enabled;
}

void chute::debugLine(const std::string &Msg) {
  std::fprintf(stderr, "[chute] %s\n", Msg.c_str());
}
