//===- support/Debug.cpp - Opt-in debug logging ---------------------------===//

#include "support/Debug.h"

#include <cstdio>
#include <cstdlib>

using namespace chute;

bool chute::debugEnabled() {
  static const bool Enabled = [] {
    const char *Env = std::getenv("CHUTE_DEBUG");
    return Env != nullptr && Env[0] != '\0';
  }();
  return Enabled;
}

void chute::debugLine(const std::string &Msg) {
  std::fprintf(stderr, "[chute] %s\n", Msg.c_str());
}
