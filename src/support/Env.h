//===- support/Env.h - Typed environment-variable readers -----*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one set of helpers every CHUTE_* environment knob goes
/// through. Call sites that keep their own getenv for bootstrap
/// reasons (the tracer reads CHUTE_TRACE before any options object
/// exists, the thread pool reads CHUTE_JOBS on lazy creation) use
/// these helpers too, so parsing rules — what counts as "set", what
/// counts as "off" — are identical everywhere. The documented entry
/// point that applies the knobs as option overrides is
/// resolveEnvOverrides() in core/Options.h.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_SUPPORT_ENV_H
#define CHUTE_SUPPORT_ENV_H

#include <optional>
#include <string>

namespace chute {

/// The raw value of \p Name, or nullopt when unset. An empty value
/// counts as unset (mirrors how shells clear a knob).
std::optional<std::string> envString(const char *Name);

/// \p Name parsed as a non-negative integer; nullopt when unset or
/// not a number. Zero is a valid value.
std::optional<unsigned> envUnsigned(const char *Name);

/// \p Name parsed as a boolean: "0", "false", "off", "no" (any case)
/// are false, anything else set is true; nullopt when unset.
std::optional<bool> envFlag(const char *Name);

} // namespace chute

#endif // CHUTE_SUPPORT_ENV_H
