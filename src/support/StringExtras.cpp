//===- support/StringExtras.cpp - Small string helpers -------------------===//

#include "support/StringExtras.h"

#include <cstdarg>
#include <cstdio>

using namespace chute;

std::string chute::join(const std::vector<std::string> &Parts,
                        const std::string &Sep) {
  std::string Result;
  for (std::size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

bool chute::startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}

bool chute::endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

std::string chute::formatStr(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Len < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Result(static_cast<std::size_t>(Len), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}
