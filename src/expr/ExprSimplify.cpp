//===- expr/ExprSimplify.cpp - Recursive expression simplification --------===//
//
// Rebuilds an expression through the smart constructors and, for
// comparisons, through linear-form normalisation, so that trivially
// true/false atoms (e.g. x + 1 <= x + 3) disappear and the remaining
// atoms have gcd-reduced coefficients.
//
//===----------------------------------------------------------------------===//

#include "expr/Expr.h"
#include "expr/LinearForm.h"

using namespace chute;

namespace {

/// Normalises a comparison through its linear form when possible.
ExprRef simplifyCmp(ExprContext &Ctx, ExprKind K, ExprRef A, ExprRef B) {
  ExprRef Raw = Ctx.mkCmp(K, A, B);
  if (!Raw->isComparison())
    return Raw; // Folded to a constant already.
  auto Atom = extractLinearAtom(Raw);
  if (!Atom)
    return Raw;
  LinearTerm &T = Atom->Term;
  if (T.isConstant()) {
    switch (Atom->Rel) {
    case ExprKind::Le:
      return Ctx.mkBool(T.constant() <= 0);
    case ExprKind::Eq:
      return Ctx.mkBool(T.constant() == 0);
    case ExprKind::Ne:
      return Ctx.mkBool(T.constant() != 0);
    default:
      return Raw;
    }
  }
  std::int64_t G = T.coeffGcd();
  if (G > 1) {
    if (Atom->Rel == ExprKind::Le) {
      // c*x + k <= 0  <=>  x + floor(k/c) <= 0 via integer tightening:
      // divide coefficients by g and round the constant up.
      std::int64_t K2 = T.constant();
      LinearTerm Reduced;
      for (const auto &[Var, C] : T.terms())
        Reduced.addCoeff(Var, C / G);
      // ceil(K2 / G) for the <= 0 normal form.
      std::int64_t Q = K2 / G;
      if (K2 % G != 0 && K2 > 0)
        ++Q;
      Reduced.setConstant(Q);
      Atom->Term = Reduced;
    } else if ((Atom->Rel == ExprKind::Eq || Atom->Rel == ExprKind::Ne) &&
               T.constant() % G != 0) {
      // g | lhs-coefficients but not the constant: equality impossible.
      return Ctx.mkBool(Atom->Rel == ExprKind::Ne);
    } else if (Atom->Rel == ExprKind::Eq || Atom->Rel == ExprKind::Ne) {
      T.divideExact(G);
    }
  }
  return Atom->toExpr(Ctx);
}

} // namespace

ExprRef chute::toNnf(ExprContext &Ctx, ExprRef E) {
  switch (E->kind()) {
  case ExprKind::Not: {
    ExprRef Inner = E->operand(0);
    switch (Inner->kind()) {
    case ExprKind::And: {
      std::vector<ExprRef> Ops;
      for (ExprRef Op : Inner->operands())
        Ops.push_back(toNnf(Ctx, Ctx.mkNot(Op)));
      return Ctx.mkOr(std::move(Ops));
    }
    case ExprKind::Or: {
      std::vector<ExprRef> Ops;
      for (ExprRef Op : Inner->operands())
        Ops.push_back(toNnf(Ctx, Ctx.mkNot(Op)));
      return Ctx.mkAnd(std::move(Ops));
    }
    case ExprKind::Implies:
      return Ctx.mkAnd(toNnf(Ctx, Inner->operand(0)),
                       toNnf(Ctx, Ctx.mkNot(Inner->operand(1))));
    default:
      // mkNot already folds constants, double negation and
      // comparisons; anything else stays as a negated atom.
      return Ctx.mkNot(toNnf(Ctx, Inner));
    }
  }
  case ExprKind::And: {
    std::vector<ExprRef> Ops;
    for (ExprRef Op : E->operands())
      Ops.push_back(toNnf(Ctx, Op));
    return Ctx.mkAnd(std::move(Ops));
  }
  case ExprKind::Or: {
    std::vector<ExprRef> Ops;
    for (ExprRef Op : E->operands())
      Ops.push_back(toNnf(Ctx, Op));
    return Ctx.mkOr(std::move(Ops));
  }
  case ExprKind::Implies:
    return Ctx.mkOr(toNnf(Ctx, Ctx.mkNot(E->operand(0))),
                    toNnf(Ctx, E->operand(1)));
  default:
    return E;
  }
}

ExprRef chute::simplify(ExprContext &Ctx, ExprRef E) {
  switch (E->kind()) {
  case ExprKind::IntConst:
  case ExprKind::Var:
  case ExprKind::True:
  case ExprKind::False:
    return E;
  case ExprKind::Add: {
    std::vector<ExprRef> Ops;
    Ops.reserve(E->numOperands());
    for (ExprRef Op : E->operands())
      Ops.push_back(simplify(Ctx, Op));
    return Ctx.mkAdd(std::move(Ops));
  }
  case ExprKind::Mul:
    return Ctx.mkMul(simplify(Ctx, E->operand(0)),
                     simplify(Ctx, E->operand(1)));
  case ExprKind::Eq:
  case ExprKind::Ne:
  case ExprKind::Le:
  case ExprKind::Lt:
  case ExprKind::Ge:
  case ExprKind::Gt:
    return simplifyCmp(Ctx, E->kind(), simplify(Ctx, E->operand(0)),
                       simplify(Ctx, E->operand(1)));
  case ExprKind::And: {
    std::vector<ExprRef> Ops;
    Ops.reserve(E->numOperands());
    for (ExprRef Op : E->operands())
      Ops.push_back(simplify(Ctx, Op));
    return Ctx.mkAnd(std::move(Ops));
  }
  case ExprKind::Or: {
    std::vector<ExprRef> Ops;
    Ops.reserve(E->numOperands());
    for (ExprRef Op : E->operands())
      Ops.push_back(simplify(Ctx, Op));
    return Ctx.mkOr(std::move(Ops));
  }
  case ExprKind::Not:
    return Ctx.mkNot(simplify(Ctx, E->operand(0)));
  case ExprKind::Implies:
    return Ctx.mkImplies(simplify(Ctx, E->operand(0)),
                         simplify(Ctx, E->operand(1)));
  case ExprKind::Exists: {
    std::vector<ExprRef> Bound = E->boundVars();
    return Ctx.mkExists(std::move(Bound), simplify(Ctx, E->body()));
  }
  case ExprKind::Forall: {
    std::vector<ExprRef> Bound = E->boundVars();
    return Ctx.mkForall(std::move(Bound), simplify(Ctx, E->body()));
  }
  }
  assert(false && "unknown expression kind");
  return E;
}
