//===- expr/ExprBuilder.cpp - Renaming and priming helpers ----------------===//

#include "expr/ExprBuilder.h"

#include "support/StringExtras.h"

using namespace chute;

static const char PrimeSuffix[] = "'";
static const char SsaSep = '@';

ExprRef chute::primed(ExprContext &Ctx, ExprRef V) {
  assert(V->isVar() && "can only prime variables");
  return Ctx.mkVar(V->varName() + PrimeSuffix);
}

bool chute::isPrimed(ExprRef V) {
  return V->isVar() && endsWith(V->varName(), PrimeSuffix);
}

ExprRef chute::unprimed(ExprContext &Ctx, ExprRef V) {
  assert(isPrimed(V) && "variable is not primed");
  const std::string &Name = V->varName();
  return Ctx.mkVar(Name.substr(0, Name.size() - 1));
}

ExprRef chute::ssaVar(ExprContext &Ctx, ExprRef V, unsigned I) {
  assert(V->isVar() && "can only index variables");
  return Ctx.mkVar(V->varName() + SsaSep + std::to_string(I));
}

std::string chute::ssaBaseName(ExprRef V) {
  assert(V->isVar() && "not a variable");
  const std::string &Name = V->varName();
  auto Pos = Name.rfind(SsaSep);
  if (Pos == std::string::npos)
    return Name;
  return Name.substr(0, Pos);
}

ExprRef chute::primeAll(ExprContext &Ctx, ExprRef E) {
  std::unordered_map<ExprRef, ExprRef> Map;
  for (ExprRef V : freeVars(E))
    Map[V] = primed(Ctx, V);
  return substitute(Ctx, E, Map);
}

ExprRef chute::unprimeAll(ExprContext &Ctx, ExprRef E) {
  std::unordered_map<ExprRef, ExprRef> Map;
  for (ExprRef V : freeVars(E))
    if (isPrimed(V))
      Map[V] = unprimed(Ctx, V);
  return substitute(Ctx, E, Map);
}

ExprRef chute::toSsa(ExprContext &Ctx, ExprRef E, unsigned I) {
  std::unordered_map<ExprRef, ExprRef> Map;
  for (ExprRef V : freeVars(E))
    Map[V] = ssaVar(Ctx, V, I);
  return substitute(Ctx, E, Map);
}

ExprRef chute::toSsa(ExprContext &Ctx, ExprRef E,
                     const std::unordered_map<std::string, unsigned> &IndexOf) {
  std::unordered_map<ExprRef, ExprRef> Map;
  for (ExprRef V : freeVars(E)) {
    auto It = IndexOf.find(V->varName());
    unsigned I = It == IndexOf.end() ? 0 : It->second;
    Map[V] = ssaVar(Ctx, V, I);
  }
  return substitute(Ctx, E, Map);
}
