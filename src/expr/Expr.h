//===- expr/Expr.h - Hash-consed first-order expressions ------*- C++ -*-===//
//
// Part of the chute project, a reproduction of Cook & Koskinen,
// "Reasoning about Nondeterminism in Programs" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable, hash-consed expression trees over linear integer
/// arithmetic with boolean structure and first-order quantifiers.
///
/// All expressions are created through an ExprContext, which owns the
/// nodes and guarantees structural uniqueness, so ExprRef equality is
/// pointer equality. Smart constructors perform light normalisation
/// (constant folding, flattening of associative operators, boolean
/// short-circuiting) so that downstream passes see a small canonical
/// surface.
///
/// The term language matches the paper's domain: program variables
/// range over (mathematical) integers, atomic propositions are linear
/// comparisons, and state-space restrictions (chute predicates) are
/// first-order formulas over states (Definition 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_EXPR_EXPR_H
#define CHUTE_EXPR_EXPR_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace chute {

class ExprNode;

/// Reference to an immutable, context-owned expression node. Two
/// structurally equal expressions built in the same ExprContext are
/// the same pointer.
using ExprRef = const ExprNode *;

/// Kinds of expression nodes.
enum class ExprKind : std::uint8_t {
  // Integer-sorted terms.
  IntConst, ///< 64-bit integer literal
  Var,      ///< named integer variable
  Add,      ///< n-ary sum
  Mul,      ///< binary product (in practice constant * term)
  // Atoms (boolean-sorted, integer operands).
  Eq,
  Ne,
  Le,
  Lt,
  Ge,
  Gt,
  // Boolean structure.
  True,
  False,
  And, ///< n-ary conjunction
  Or,  ///< n-ary disjunction
  Not,
  Implies,
  // Quantifiers (bound variables are Var nodes).
  Exists,
  Forall,
};

/// Returns true if expressions of kind \p K are boolean-sorted.
bool isBoolKind(ExprKind K);

/// Returns true if \p K is one of the six comparison kinds.
bool isComparisonKind(ExprKind K);

/// A single immutable expression node. Create via ExprContext only.
class ExprNode {
public:
  ExprKind kind() const { return Kind; }

  /// The literal value; only valid for IntConst nodes.
  std::int64_t intValue() const {
    assert(Kind == ExprKind::IntConst && "not an integer literal");
    return IntValue;
  }

  /// The variable name; only valid for Var nodes.
  const std::string &varName() const {
    assert(Kind == ExprKind::Var && "not a variable");
    return Name;
  }

  /// Operand list. For quantifiers this is the single body formula.
  const std::vector<ExprRef> &operands() const { return Ops; }

  std::size_t numOperands() const { return Ops.size(); }

  ExprRef operand(std::size_t I) const {
    assert(I < Ops.size() && "operand index out of range");
    return Ops[I];
  }

  /// Bound variables; only non-empty for quantifier nodes.
  const std::vector<ExprRef> &boundVars() const { return Bound; }

  /// Quantifier body; only valid for Exists/Forall nodes.
  ExprRef body() const {
    assert((Kind == ExprKind::Exists || Kind == ExprKind::Forall) &&
           "not a quantifier");
    return Ops[0];
  }

  bool isBool() const { return isBoolKind(Kind); }
  bool isComparison() const { return isComparisonKind(Kind); }
  bool isTrue() const { return Kind == ExprKind::True; }
  bool isFalse() const { return Kind == ExprKind::False; }
  bool isVar() const { return Kind == ExprKind::Var; }
  bool isIntConst() const { return Kind == ExprKind::IntConst; }

  /// Structural hash, cached at construction.
  std::size_t hash() const { return Hash; }

  /// Renders this expression as human-readable infix text.
  std::string toString() const;

private:
  friend class ExprContext;

  ExprNode(ExprKind K, std::int64_t IV, std::string N,
           std::vector<ExprRef> O, std::vector<ExprRef> B,
           std::size_t H)
      : Kind(K), IntValue(IV), Name(std::move(N)), Ops(std::move(O)),
        Bound(std::move(B)), Hash(H) {}

  ExprKind Kind;
  std::int64_t IntValue = 0;
  std::string Name;
  std::vector<ExprRef> Ops;
  std::vector<ExprRef> Bound;
  std::size_t Hash = 0;
};

/// Owns and uniquifies expression nodes. All exprs that interact with
/// each other (programs, CTL atoms, chutes) must come from the same
/// context.
///
/// Thread safety: node creation (every mk* call) serialises on an
/// internal mutex, so worker threads of the proof-obligation
/// scheduler may build expressions concurrently. Nodes themselves are
/// immutable after interning and may be read without locking.
class ExprContext {
public:
  ExprContext();
  ~ExprContext();

  ExprContext(const ExprContext &) = delete;
  ExprContext &operator=(const ExprContext &) = delete;

  //===-- Leaves ----------------------------------------------------===//

  ExprRef mkInt(std::int64_t V);
  ExprRef mkVar(const std::string &Name);
  ExprRef mkTrue();
  ExprRef mkFalse();
  ExprRef mkBool(bool B) { return B ? mkTrue() : mkFalse(); }

  //===-- Arithmetic (with folding/flattening) ----------------------===//

  /// n-ary sum; flattens nested Adds and folds constants.
  ExprRef mkAdd(std::vector<ExprRef> Ops);
  ExprRef mkAdd(ExprRef A, ExprRef B) { return mkAdd({A, B}); }
  /// A - B, encoded as A + (-1)*B.
  ExprRef mkSub(ExprRef A, ExprRef B);
  /// Binary product; folds constant * constant and 0/1 units.
  ExprRef mkMul(ExprRef A, ExprRef B);
  ExprRef mkMul(std::int64_t C, ExprRef E) { return mkMul(mkInt(C), E); }
  ExprRef mkNeg(ExprRef E) { return mkMul(-1, E); }

  //===-- Comparisons ------------------------------------------------===//

  ExprRef mkCmp(ExprKind K, ExprRef A, ExprRef B);
  ExprRef mkEq(ExprRef A, ExprRef B) { return mkCmp(ExprKind::Eq, A, B); }
  ExprRef mkNe(ExprRef A, ExprRef B) { return mkCmp(ExprKind::Ne, A, B); }
  ExprRef mkLe(ExprRef A, ExprRef B) { return mkCmp(ExprKind::Le, A, B); }
  ExprRef mkLt(ExprRef A, ExprRef B) { return mkCmp(ExprKind::Lt, A, B); }
  ExprRef mkGe(ExprRef A, ExprRef B) { return mkCmp(ExprKind::Ge, A, B); }
  ExprRef mkGt(ExprRef A, ExprRef B) { return mkCmp(ExprKind::Gt, A, B); }

  //===-- Boolean structure ------------------------------------------===//

  /// n-ary conjunction; flattens, drops True, collapses on False.
  ExprRef mkAnd(std::vector<ExprRef> Ops);
  ExprRef mkAnd(ExprRef A, ExprRef B) { return mkAnd({A, B}); }
  /// n-ary disjunction; flattens, drops False, collapses on True.
  ExprRef mkOr(std::vector<ExprRef> Ops);
  ExprRef mkOr(ExprRef A, ExprRef B) { return mkOr({A, B}); }
  /// Negation; eliminates double negation and negates comparisons in
  /// place (e.g. not(a <= b) becomes a > b).
  ExprRef mkNot(ExprRef E);
  ExprRef mkImplies(ExprRef A, ExprRef B);

  //===-- Quantifiers -------------------------------------------------===//

  /// Existential quantification over \p Bound (all Var nodes).
  ExprRef mkExists(std::vector<ExprRef> Bound, ExprRef Body);
  /// Universal quantification over \p Bound (all Var nodes).
  ExprRef mkForall(std::vector<ExprRef> Bound, ExprRef Body);

  /// Number of distinct nodes created so far (for tests/stats).
  std::size_t numNodes() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Nodes.size();
  }

  /// Creates a fresh variable whose name starts with \p Prefix and is
  /// distinct from every variable created through this context so far.
  ExprRef freshVar(const std::string &Prefix);

private:
  ExprRef intern(ExprKind K, std::int64_t IV, std::string N,
                 std::vector<ExprRef> Ops, std::vector<ExprRef> Bound);
  /// intern() body without taking Mu (callers hold it already).
  ExprRef internLocked(ExprKind K, std::int64_t IV, std::string N,
                       std::vector<ExprRef> Ops,
                       std::vector<ExprRef> Bound);

  struct Key;
  struct KeyHash;
  struct KeyEq;

  /// Guards Nodes, Buckets and FreshCounters; see the class comment.
  mutable std::mutex Mu;
  std::vector<std::unique_ptr<ExprNode>> Nodes;
  std::unordered_map<std::size_t, std::vector<ExprRef>> Buckets;
  std::unordered_map<std::string, std::uint64_t> FreshCounters;
  ExprRef TrueNode = nullptr;
  ExprRef FalseNode = nullptr;
};

//===-- Free helpers -------------------------------------------------===//

/// Collects the free variables of \p E into \p Out (deduplicated, in
/// first-occurrence order).
void collectFreeVars(ExprRef E, std::vector<ExprRef> &Out);

/// Returns the free variables of \p E.
std::vector<ExprRef> freeVars(ExprRef E);

/// Returns true if variable \p V occurs free in \p E.
bool occursFree(ExprRef E, ExprRef V);

/// Capture-avoiding parallel substitution of variables.
ExprRef substitute(ExprContext &Ctx, ExprRef E,
                   const std::unordered_map<ExprRef, ExprRef> &Map);

/// Substitutes a single variable.
ExprRef substitute(ExprContext &Ctx, ExprRef E, ExprRef Var, ExprRef To);

/// Recursively simplifies \p E (constant folding, unit laws, trivial
/// comparison evaluation). Sound for both sorts; idempotent.
ExprRef simplify(ExprContext &Ctx, ExprRef E);

/// Evaluates a closed (or fully assigned) expression under \p Env.
/// Boolean results are 0/1. Asserts on unassigned variables.
std::int64_t evaluate(ExprRef E,
                      const std::unordered_map<std::string, std::int64_t> &Env);

/// Pushes negations down to atoms (comparisons negate in place).
/// Quantifier-free inputs only.
ExprRef toNnf(ExprContext &Ctx, ExprRef E);

/// Splits a conjunction into its conjuncts ("And" flattening view);
/// a non-And formula yields a single-element vector.
std::vector<ExprRef> conjuncts(ExprRef E);

/// Splits a disjunction into its disjuncts.
std::vector<ExprRef> disjuncts(ExprRef E);

} // namespace chute

#endif // CHUTE_EXPR_EXPR_H
