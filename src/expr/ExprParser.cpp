//===- expr/ExprParser.cpp - Lexer and expression parser ------------------===//

#include "expr/ExprParser.h"

#include "support/StringExtras.h"

#include <cctype>

using namespace chute;

//===-- Lexer -------------------------------------------------------------===//

Lexer::Lexer(std::string Input) : Text(std::move(Input)) {
  Current = lexOne();
}

Token Lexer::next() {
  Token T = Current;
  Current = lexOne();
  return T;
}

std::string Lexer::describePos(std::size_t Pos) const {
  std::size_t Line = 1, Col = 1;
  for (std::size_t I = 0; I < Pos && I < Text.size(); ++I) {
    if (Text[I] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
  }
  return std::to_string(Line) + ":" + std::to_string(Col);
}

Token Lexer::lexOne() {
  // Skip whitespace and // comments.
  for (;;) {
    while (Cursor < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Cursor])))
      ++Cursor;
    if (Cursor + 1 < Text.size() && Text[Cursor] == '/' &&
        Text[Cursor + 1] == '/') {
      while (Cursor < Text.size() && Text[Cursor] != '\n')
        ++Cursor;
      continue;
    }
    break;
  }

  Token T;
  T.Pos = Cursor;
  if (Cursor >= Text.size()) {
    T.K = Token::Eof;
    return T;
  }

  char C = Text[Cursor];
  auto Single = [&](Token::Kind K) {
    T.K = K;
    ++Cursor;
    return T;
  };

  if (std::isdigit(static_cast<unsigned char>(C))) {
    std::int64_t V = 0;
    while (Cursor < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Cursor]))) {
      V = V * 10 + (Text[Cursor] - '0');
      ++Cursor;
    }
    T.K = Token::Int;
    T.Value = V;
    return T;
  }

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::size_t Start = Cursor;
    while (Cursor < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Cursor])) ||
            Text[Cursor] == '_' || Text[Cursor] == '\'' ||
            Text[Cursor] == '@' || Text[Cursor] == '!' ||
            Text[Cursor] == '.')) {
      // Allow primes, SSA indices, fresh-var bangs and dots inside
      // identifiers, but '!' only when followed by an alnum (so that
      // "x!=y" still lexes as x, !=, y and "!p" as !, p).
      if (Text[Cursor] == '!' &&
          (Cursor + 1 >= Text.size() ||
           !std::isalnum(static_cast<unsigned char>(Text[Cursor + 1]))))
        break;
      if (Text[Cursor] == '!' && Cursor + 1 < Text.size() &&
          Text[Cursor + 1] == '=')
        break;
      ++Cursor;
    }
    T.K = Token::Ident;
    T.Text = Text.substr(Start, Cursor - Start);
    return T;
  }

  switch (C) {
  case '(':
    return Single(Token::LParen);
  case ')':
    return Single(Token::RParen);
  case '{':
    return Single(Token::LBrace);
  case '}':
    return Single(Token::RBrace);
  case '[':
    return Single(Token::LBracket);
  case ']':
    return Single(Token::RBracket);
  case ';':
    return Single(Token::Semi);
  case ',':
    return Single(Token::Comma);
  case '+':
    return Single(Token::Plus);
  case '*':
    return Single(Token::Star);
  case '-':
    if (Cursor + 1 < Text.size() && Text[Cursor + 1] == '>') {
      Cursor += 2;
      T.K = Token::Arrow;
      return T;
    }
    return Single(Token::Minus);
  case '!':
    if (Cursor + 1 < Text.size() && Text[Cursor + 1] == '=') {
      Cursor += 2;
      T.K = Token::Ne;
      return T;
    }
    return Single(Token::Bang);
  case '&':
    if (Cursor + 1 < Text.size() && Text[Cursor + 1] == '&') {
      Cursor += 2;
      T.K = Token::AmpAmp;
      return T;
    }
    break;
  case '|':
    if (Cursor + 1 < Text.size() && Text[Cursor + 1] == '|') {
      Cursor += 2;
      T.K = Token::PipePipe;
      return T;
    }
    break;
  case '<':
    if (Cursor + 1 < Text.size() && Text[Cursor + 1] == '=') {
      Cursor += 2;
      T.K = Token::Le;
      return T;
    }
    return Single(Token::Lt);
  case '>':
    if (Cursor + 1 < Text.size() && Text[Cursor + 1] == '=') {
      Cursor += 2;
      T.K = Token::Ge;
      return T;
    }
    return Single(Token::Gt);
  case '=':
    if (Cursor + 1 < Text.size() && Text[Cursor + 1] == '=') {
      Cursor += 2;
      T.K = Token::EqEq;
      return T;
    }
    return Single(Token::Assign);
  default:
    break;
  }

  T.K = Token::Error;
  T.Text = formatStr("unexpected character '%c'", C);
  ++Cursor;
  return T;
}

//===-- Parser -------------------------------------------------------------===//

bool ExprParser::fail(std::string &Err, const std::string &Msg) {
  if (Err.empty())
    Err = "at " + Lex.describePos(Lex.peek().Pos) + ": " + Msg;
  return false;
}

std::optional<ExprRef> ExprParser::parseFormula(std::string &Err) {
  auto E = parseImplies(Err);
  if (!E)
    return std::nullopt;
  if (!(*E)->isBool()) {
    fail(Err, "expected a boolean expression, found an arithmetic term");
    return std::nullopt;
  }
  return E;
}

std::optional<ExprRef> ExprParser::parseTerm(std::string &Err) {
  auto E = parseSum(Err);
  if (!E)
    return std::nullopt;
  if ((*E)->isBool()) {
    fail(Err, "expected an arithmetic term, found a boolean expression");
    return std::nullopt;
  }
  return E;
}

std::optional<ExprRef> ExprParser::parseLoose(std::string &Err) {
  return parseImplies(Err);
}

std::optional<ExprRef> ExprParser::parseAtomFormula(std::string &Err) {
  auto E = parseRel(Err);
  if (!E)
    return std::nullopt;
  if (!(*E)->isBool()) {
    fail(Err, "expected a comparison or true/false");
    return std::nullopt;
  }
  return E;
}

std::optional<ExprRef> ExprParser::parseImplies(std::string &Err) {
  auto Lhs = parseOr(Err);
  if (!Lhs)
    return std::nullopt;
  if (Lex.peek().K != Token::Arrow)
    return Lhs;
  Lex.next();
  auto Rhs = parseImplies(Err); // Right-associative.
  if (!Rhs)
    return std::nullopt;
  if (!(*Lhs)->isBool() || !(*Rhs)->isBool()) {
    fail(Err, "'->' requires boolean operands");
    return std::nullopt;
  }
  return Ctx.mkImplies(*Lhs, *Rhs);
}

std::optional<ExprRef> ExprParser::parseOr(std::string &Err) {
  auto Lhs = parseAnd(Err);
  if (!Lhs)
    return std::nullopt;
  while (Lex.peek().K == Token::PipePipe) {
    Lex.next();
    auto Rhs = parseAnd(Err);
    if (!Rhs)
      return std::nullopt;
    if (!(*Lhs)->isBool() || !(*Rhs)->isBool()) {
      fail(Err, "'||' requires boolean operands");
      return std::nullopt;
    }
    Lhs = Ctx.mkOr(*Lhs, *Rhs);
  }
  return Lhs;
}

std::optional<ExprRef> ExprParser::parseAnd(std::string &Err) {
  auto Lhs = parseUnary(Err);
  if (!Lhs)
    return std::nullopt;
  while (Lex.peek().K == Token::AmpAmp) {
    Lex.next();
    auto Rhs = parseUnary(Err);
    if (!Rhs)
      return std::nullopt;
    if (!(*Lhs)->isBool() || !(*Rhs)->isBool()) {
      fail(Err, "'&&' requires boolean operands");
      return std::nullopt;
    }
    Lhs = Ctx.mkAnd(*Lhs, *Rhs);
  }
  return Lhs;
}

std::optional<ExprRef> ExprParser::parseUnary(std::string &Err) {
  if (Lex.peek().K == Token::Bang) {
    Lex.next();
    auto E = parseUnary(Err);
    if (!E)
      return std::nullopt;
    if (!(*E)->isBool()) {
      fail(Err, "'!' requires a boolean operand");
      return std::nullopt;
    }
    return Ctx.mkNot(*E);
  }
  return parseRel(Err);
}

std::optional<ExprRef> ExprParser::parseRel(std::string &Err) {
  auto Lhs = parseSum(Err);
  if (!Lhs)
    return std::nullopt;
  ExprKind Rel;
  switch (Lex.peek().K) {
  case Token::Le:
    Rel = ExprKind::Le;
    break;
  case Token::Lt:
    Rel = ExprKind::Lt;
    break;
  case Token::Ge:
    Rel = ExprKind::Ge;
    break;
  case Token::Gt:
    Rel = ExprKind::Gt;
    break;
  case Token::EqEq:
  case Token::Assign: // Accept '=' as equality in formula position.
    Rel = ExprKind::Eq;
    break;
  case Token::Ne:
    Rel = ExprKind::Ne;
    break;
  default:
    return Lhs;
  }
  Lex.next();
  auto Rhs = parseSum(Err);
  if (!Rhs)
    return std::nullopt;
  if ((*Lhs)->isBool() || (*Rhs)->isBool()) {
    fail(Err, "comparison requires arithmetic operands");
    return std::nullopt;
  }
  return Ctx.mkCmp(Rel, *Lhs, *Rhs);
}

std::optional<ExprRef> ExprParser::parseSum(std::string &Err) {
  auto Lhs = parseProduct(Err);
  if (!Lhs)
    return std::nullopt;
  for (;;) {
    Token::Kind K = Lex.peek().K;
    if (K != Token::Plus && K != Token::Minus)
      return Lhs;
    Lex.next();
    auto Rhs = parseProduct(Err);
    if (!Rhs)
      return std::nullopt;
    if ((*Lhs)->isBool() || (*Rhs)->isBool()) {
      fail(Err, "'+'/'-' require arithmetic operands");
      return std::nullopt;
    }
    Lhs = K == Token::Plus ? Ctx.mkAdd(*Lhs, *Rhs) : Ctx.mkSub(*Lhs, *Rhs);
  }
}

std::optional<ExprRef> ExprParser::parseProduct(std::string &Err) {
  auto Lhs = parseAtom(Err);
  if (!Lhs)
    return std::nullopt;
  while (Lex.peek().K == Token::Star) {
    Lex.next();
    auto Rhs = parseAtom(Err);
    if (!Rhs)
      return std::nullopt;
    if ((*Lhs)->isBool() || (*Rhs)->isBool()) {
      fail(Err, "'*' requires arithmetic operands");
      return std::nullopt;
    }
    Lhs = Ctx.mkMul(*Lhs, *Rhs);
  }
  return Lhs;
}

std::optional<ExprRef> ExprParser::parseAtom(std::string &Err) {
  const Token &T = Lex.peek();
  switch (T.K) {
  case Token::Int: {
    std::int64_t V = T.Value;
    Lex.next();
    return Ctx.mkInt(V);
  }
  case Token::Ident: {
    std::string Name = T.Text;
    Lex.next();
    if (Name == "true")
      return Ctx.mkTrue();
    if (Name == "false")
      return Ctx.mkFalse();
    return Ctx.mkVar(Name);
  }
  case Token::Minus: {
    Lex.next();
    auto E = parseAtom(Err);
    if (!E)
      return std::nullopt;
    if ((*E)->isBool()) {
      fail(Err, "unary '-' requires an arithmetic operand");
      return std::nullopt;
    }
    return Ctx.mkNeg(*E);
  }
  case Token::LParen: {
    Lex.next();
    auto E = parseImplies(Err);
    if (!E)
      return std::nullopt;
    if (Lex.peek().K != Token::RParen) {
      fail(Err, "expected ')'");
      return std::nullopt;
    }
    Lex.next();
    return E;
  }
  case Token::Error:
    fail(Err, T.Text);
    return std::nullopt;
  default:
    fail(Err, "expected an expression");
    return std::nullopt;
  }
}

//===-- Whole-string entry points ------------------------------------------===//

std::optional<ExprRef> chute::parseFormulaString(ExprContext &Ctx,
                                                 const std::string &Text,
                                                 std::string &Err) {
  Lexer Lex(Text);
  ExprParser P(Ctx, Lex);
  auto E = P.parseFormula(Err);
  if (!E)
    return std::nullopt;
  if (Lex.peek().K != Token::Eof) {
    Err = "at " + Lex.describePos(Lex.peek().Pos) +
          ": unexpected trailing input";
    return std::nullopt;
  }
  return E;
}

std::optional<ExprRef> chute::parseTermString(ExprContext &Ctx,
                                              const std::string &Text,
                                              std::string &Err) {
  Lexer Lex(Text);
  ExprParser P(Ctx, Lex);
  auto E = P.parseTerm(Err);
  if (!E)
    return std::nullopt;
  if (Lex.peek().K != Token::Eof) {
    Err = "at " + Lex.describePos(Lex.peek().Pos) +
          ": unexpected trailing input";
    return std::nullopt;
  }
  return E;
}
