//===- expr/ExprBuilder.h - Renaming and priming helpers ------*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for the two renamings the verifier uses constantly:
/// priming (current state x vs. next state x') and SSA indexing
/// (x@0, x@1, ... along a path, as in the paper's Section 2 formula).
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_EXPR_EXPRBUILDER_H
#define CHUTE_EXPR_EXPRBUILDER_H

#include "expr/Expr.h"

namespace chute {

/// Returns the primed (next-state) copy of variable \p V, e.g. x'.
ExprRef primed(ExprContext &Ctx, ExprRef V);

/// True if \p V is a primed variable.
bool isPrimed(ExprRef V);

/// Removes one prime from \p V; asserts isPrimed(V).
ExprRef unprimed(ExprContext &Ctx, ExprRef V);

/// Returns the SSA copy of variable \p V at index \p I, e.g. x@3.
ExprRef ssaVar(ExprContext &Ctx, ExprRef V, unsigned I);

/// If \p V is an SSA variable x@i, returns the base name "x";
/// otherwise returns the variable's own name.
std::string ssaBaseName(ExprRef V);

/// Replaces every free variable of \p E by its primed copy.
ExprRef primeAll(ExprContext &Ctx, ExprRef E);

/// Replaces every free primed variable of \p E by its unprimed copy.
ExprRef unprimeAll(ExprContext &Ctx, ExprRef E);

/// Replaces every free variable x of \p E by x@I.
ExprRef toSsa(ExprContext &Ctx, ExprRef E, unsigned I);

/// Replaces every free variable of \p E according to \p IndexOf: each
/// variable x maps to x@IndexOf(name). Missing names keep index 0.
ExprRef toSsa(ExprContext &Ctx, ExprRef E,
              const std::unordered_map<std::string, unsigned> &IndexOf);

} // namespace chute

#endif // CHUTE_EXPR_EXPRBUILDER_H
