//===- expr/ExprPrinter.cpp - Infix rendering of expressions --------------===//

#include "expr/Expr.h"

#include "support/StringExtras.h"

using namespace chute;

namespace {

/// Binding strengths for parenthesisation, loosest to tightest.
enum Precedence {
  PrecQuant = 0,
  PrecImplies = 1,
  PrecOr = 2,
  PrecAnd = 3,
  PrecNot = 4,
  PrecCmp = 5,
  PrecAdd = 6,
  PrecMul = 7,
  PrecAtom = 8,
};

int precedenceOf(ExprKind K) {
  switch (K) {
  case ExprKind::Exists:
  case ExprKind::Forall:
    return PrecQuant;
  case ExprKind::Implies:
    return PrecImplies;
  case ExprKind::Or:
    return PrecOr;
  case ExprKind::And:
    return PrecAnd;
  case ExprKind::Not:
    return PrecNot;
  case ExprKind::Eq:
  case ExprKind::Ne:
  case ExprKind::Le:
  case ExprKind::Lt:
  case ExprKind::Ge:
  case ExprKind::Gt:
    return PrecCmp;
  case ExprKind::Add:
    return PrecAdd;
  case ExprKind::Mul:
    return PrecMul;
  case ExprKind::IntConst:
  case ExprKind::Var:
  case ExprKind::True:
  case ExprKind::False:
    return PrecAtom;
  }
  return PrecAtom;
}

const char *cmpSymbol(ExprKind K) {
  switch (K) {
  case ExprKind::Eq:
    return " == ";
  case ExprKind::Ne:
    return " != ";
  case ExprKind::Le:
    return " <= ";
  case ExprKind::Lt:
    return " < ";
  case ExprKind::Ge:
    return " >= ";
  case ExprKind::Gt:
    return " > ";
  default:
    assert(false && "not a comparison");
    return "?";
  }
}

std::string render(ExprRef E, int ParentPrec) {
  int MyPrec = precedenceOf(E->kind());
  std::string S;
  switch (E->kind()) {
  case ExprKind::IntConst:
    S = std::to_string(E->intValue());
    break;
  case ExprKind::Var:
    S = E->varName();
    break;
  case ExprKind::Add: {
    std::vector<std::string> Parts;
    for (ExprRef Op : E->operands())
      Parts.push_back(render(Op, MyPrec));
    S = join(Parts, " + ");
    break;
  }
  case ExprKind::Mul:
    S = render(E->operand(0), MyPrec) + "*" + render(E->operand(1), MyPrec);
    break;
  case ExprKind::Eq:
  case ExprKind::Ne:
  case ExprKind::Le:
  case ExprKind::Lt:
  case ExprKind::Ge:
  case ExprKind::Gt:
    S = render(E->operand(0), MyPrec + 1) + cmpSymbol(E->kind()) +
        render(E->operand(1), MyPrec + 1);
    break;
  case ExprKind::True:
    S = "true";
    break;
  case ExprKind::False:
    S = "false";
    break;
  case ExprKind::And: {
    std::vector<std::string> Parts;
    for (ExprRef Op : E->operands())
      Parts.push_back(render(Op, MyPrec));
    S = join(Parts, " && ");
    break;
  }
  case ExprKind::Or: {
    std::vector<std::string> Parts;
    for (ExprRef Op : E->operands())
      Parts.push_back(render(Op, MyPrec));
    S = join(Parts, " || ");
    break;
  }
  case ExprKind::Not:
    S = "!" + render(E->operand(0), MyPrec + 1);
    break;
  case ExprKind::Implies:
    S = render(E->operand(0), MyPrec + 1) + " -> " +
        render(E->operand(1), MyPrec);
    break;
  case ExprKind::Exists:
  case ExprKind::Forall: {
    std::vector<std::string> Names;
    for (ExprRef B : E->boundVars())
      Names.push_back(B->varName());
    S = std::string(E->kind() == ExprKind::Exists ? "exists " : "forall ") +
        join(Names, ", ") + ". " + render(E->body(), MyPrec);
    break;
  }
  }
  if (MyPrec < ParentPrec)
    return "(" + S + ")";
  return S;
}

} // namespace

std::string ExprNode::toString() const { return render(this, PrecQuant); }
