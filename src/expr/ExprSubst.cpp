//===- expr/ExprSubst.cpp - Capture-avoiding substitution ------------------===//

#include "expr/Expr.h"

#include <algorithm>

using namespace chute;

namespace {

ExprRef substImpl(ExprContext &Ctx, ExprRef E,
                  const std::unordered_map<ExprRef, ExprRef> &Map) {
  if (E->isVar()) {
    auto It = Map.find(E);
    return It == Map.end() ? E : It->second;
  }
  if (E->numOperands() == 0)
    return E;

  // Quantifiers: bound variables shadow the substitution. Our fresh
  // bound variables are never substitution targets nor appear in
  // substitution ranges in this codebase, so shadowing (rather than
  // alpha-renaming) is sufficient; assert the capture precondition.
  if (E->kind() == ExprKind::Exists || E->kind() == ExprKind::Forall) {
    std::unordered_map<ExprRef, ExprRef> Inner = Map;
    for (ExprRef B : E->boundVars()) {
      Inner.erase(B);
#ifndef NDEBUG
      for (const auto &[From, To] : Inner)
        assert(!occursFree(To, B) && "substitution would capture");
#endif
    }
    ExprRef NewBody = substImpl(Ctx, E->body(), Inner);
    if (NewBody == E->body())
      return E;
    std::vector<ExprRef> Bound = E->boundVars();
    if (E->kind() == ExprKind::Exists)
      return Ctx.mkExists(std::move(Bound), NewBody);
    return Ctx.mkForall(std::move(Bound), NewBody);
  }

  std::vector<ExprRef> NewOps;
  NewOps.reserve(E->numOperands());
  bool Changed = false;
  for (ExprRef Op : E->operands()) {
    ExprRef NewOp = substImpl(Ctx, Op, Map);
    Changed |= NewOp != Op;
    NewOps.push_back(NewOp);
  }
  if (!Changed)
    return E;

  switch (E->kind()) {
  case ExprKind::Add:
    return Ctx.mkAdd(std::move(NewOps));
  case ExprKind::Mul:
    return Ctx.mkMul(NewOps[0], NewOps[1]);
  case ExprKind::Eq:
  case ExprKind::Ne:
  case ExprKind::Le:
  case ExprKind::Lt:
  case ExprKind::Ge:
  case ExprKind::Gt:
    return Ctx.mkCmp(E->kind(), NewOps[0], NewOps[1]);
  case ExprKind::And:
    return Ctx.mkAnd(std::move(NewOps));
  case ExprKind::Or:
    return Ctx.mkOr(std::move(NewOps));
  case ExprKind::Not:
    return Ctx.mkNot(NewOps[0]);
  case ExprKind::Implies:
    return Ctx.mkImplies(NewOps[0], NewOps[1]);
  default:
    assert(false && "unexpected kind in substitution");
    return E;
  }
}

} // namespace

ExprRef chute::substitute(ExprContext &Ctx, ExprRef E,
                          const std::unordered_map<ExprRef, ExprRef> &Map) {
  if (Map.empty())
    return E;
  return substImpl(Ctx, E, Map);
}

ExprRef chute::substitute(ExprContext &Ctx, ExprRef E, ExprRef Var,
                          ExprRef To) {
  assert(Var->isVar() && "substitution source must be a variable");
  std::unordered_map<ExprRef, ExprRef> Map;
  Map[Var] = To;
  return substImpl(Ctx, E, Map);
}
