//===- expr/LinearForm.h - Linear views of terms and atoms ----*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conversion between expression trees and normalised linear forms
/// `sum(c_i * v_i) + k`, used by Fourier-Motzkin elimination, Farkas
/// ranking synthesis, and the interval domain.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_EXPR_LINEARFORM_H
#define CHUTE_EXPR_LINEARFORM_H

#include "expr/Expr.h"

#include <optional>

namespace chute {

/// A linear integer term: sum of coefficient*variable products plus a
/// constant. Terms are kept sorted by variable name for deterministic
/// iteration; zero coefficients are never stored.
class LinearTerm {
public:
  LinearTerm() = default;
  explicit LinearTerm(std::int64_t Constant) : Const(Constant) {}

  /// Coefficient of \p V (0 when absent).
  std::int64_t coeff(ExprRef V) const;

  /// Adds \p C to the coefficient of \p V.
  void addCoeff(ExprRef V, std::int64_t C);

  std::int64_t constant() const { return Const; }
  void setConstant(std::int64_t C) { Const = C; }
  void addConstant(std::int64_t C) { Const += C; }

  /// Variable/coefficient pairs sorted by variable name.
  const std::vector<std::pair<ExprRef, std::int64_t>> &terms() const {
    return Terms;
  }

  bool isConstant() const { return Terms.empty(); }

  /// this + Other.
  LinearTerm plus(const LinearTerm &Other) const;
  /// this - Other.
  LinearTerm minus(const LinearTerm &Other) const;
  /// this * K.
  LinearTerm scaled(std::int64_t K) const;

  /// this + Other with overflow detection: nullopt when any
  /// coefficient or the constant would wrap int64.
  std::optional<LinearTerm> plusChecked(const LinearTerm &Other) const;
  /// this * K with overflow detection.
  std::optional<LinearTerm> scaledChecked(std::int64_t K) const;

  /// Removes the variable \p V (returns its former coefficient).
  std::int64_t drop(ExprRef V);

  /// The gcd of all coefficients (not the constant); 0 for constants.
  std::int64_t coeffGcd() const;

  /// Divides every coefficient and the constant by \p K; asserts
  /// exact divisibility.
  void divideExact(std::int64_t K);

  /// Rebuilds an expression tree equal to this term.
  ExprRef toExpr(ExprContext &Ctx) const;

  std::string toString() const;

  bool operator==(const LinearTerm &Other) const {
    return Const == Other.Const && Terms == Other.Terms;
  }

private:
  // Sorted by variable name (not pointer) for deterministic output.
  std::vector<std::pair<ExprRef, std::int64_t>> Terms;
  std::int64_t Const = 0;
};

/// A linear atom in the normal form `Term REL 0`, where REL is one of
/// Eq, Ne, Le, Lt (Ge/Gt are normalised away by scaling with -1).
struct LinearAtom {
  LinearTerm Term;
  ExprKind Rel = ExprKind::Le;

  /// Rebuilds `Term REL 0` as an expression.
  ExprRef toExpr(ExprContext &Ctx) const;

  std::string toString() const;
};

/// Extracts a linear view of an integer-sorted expression; returns
/// nullopt for non-linear terms (e.g. products of two variables).
std::optional<LinearTerm> extractLinearTerm(ExprRef E);

/// Extracts a normalised linear atom from a comparison. Strict
/// inequalities over integers are tightened (`t < 0` becomes
/// `t + 1 <= 0`). Returns nullopt for non-linear operands or
/// non-comparison inputs.
std::optional<LinearAtom> extractLinearAtom(ExprRef E);

/// Extracts every conjunct of \p E as a linear atom; returns nullopt
/// if \p E is not a conjunction of linear comparisons (True yields an
/// empty vector).
std::optional<std::vector<LinearAtom>> extractConjunction(ExprRef E);

/// Expands a quantifier-free formula into DNF cubes of linear atoms
/// (negations are pushed to atoms first). Returns nullopt when the
/// formula contains quantifiers or non-linear atoms, or when the
/// expansion would exceed \p MaxCubes cubes. A True input yields one
/// empty cube; a False input yields zero cubes.
std::optional<std::vector<std::vector<LinearAtom>>>
dnfAtomCubes(ExprContext &Ctx, ExprRef E, std::size_t MaxCubes = 64);

} // namespace chute

#endif // CHUTE_EXPR_LINEARFORM_H
