//===- expr/LinearForm.cpp - Linear views of terms and atoms --------------===//

#include "expr/LinearForm.h"

#include "support/StringExtras.h"

#include <algorithm>
#include <numeric>

using namespace chute;

std::int64_t LinearTerm::coeff(ExprRef V) const {
  for (const auto &[Var, C] : Terms)
    if (Var == V)
      return C;
  return 0;
}

void LinearTerm::addCoeff(ExprRef V, std::int64_t C) {
  assert(V->isVar() && "coefficient keys must be variables");
  if (C == 0)
    return;
  for (auto It = Terms.begin(); It != Terms.end(); ++It) {
    if (It->first == V) {
      It->second += C;
      if (It->second == 0)
        Terms.erase(It);
      return;
    }
  }
  auto Pos = std::lower_bound(
      Terms.begin(), Terms.end(), V,
      [](const std::pair<ExprRef, std::int64_t> &P, ExprRef Var) {
        return P.first->varName() < Var->varName();
      });
  Terms.insert(Pos, {V, C});
}

LinearTerm LinearTerm::plus(const LinearTerm &Other) const {
  LinearTerm Result = *this;
  Result.Const += Other.Const;
  for (const auto &[Var, C] : Other.Terms)
    Result.addCoeff(Var, C);
  return Result;
}

LinearTerm LinearTerm::minus(const LinearTerm &Other) const {
  return plus(Other.scaled(-1));
}

LinearTerm LinearTerm::scaled(std::int64_t K) const {
  LinearTerm Result;
  if (K == 0)
    return Result;
  Result.Const = Const * K;
  Result.Terms = Terms;
  for (auto &[Var, C] : Result.Terms)
    C *= K;
  return Result;
}

std::optional<LinearTerm> LinearTerm::plusChecked(
    const LinearTerm &Other) const {
  LinearTerm Result = *this;
  if (__builtin_add_overflow(Result.Const, Other.Const, &Result.Const))
    return std::nullopt;
  for (const auto &[Var, C] : Other.Terms) {
    // addCoeff sums into the existing coefficient; pre-check that sum.
    std::int64_t Cur = Result.coeff(Var);
    std::int64_t Sum;
    if (__builtin_add_overflow(Cur, C, &Sum))
      return std::nullopt;
    Result.addCoeff(Var, C);
  }
  return Result;
}

std::optional<LinearTerm> LinearTerm::scaledChecked(
    std::int64_t K) const {
  LinearTerm Result;
  if (K == 0)
    return Result;
  if (__builtin_mul_overflow(Const, K, &Result.Const))
    return std::nullopt;
  Result.Terms = Terms;
  for (auto &[Var, C] : Result.Terms)
    if (__builtin_mul_overflow(C, K, &C))
      return std::nullopt;
  return Result;
}

std::int64_t LinearTerm::drop(ExprRef V) {
  for (auto It = Terms.begin(); It != Terms.end(); ++It) {
    if (It->first == V) {
      std::int64_t C = It->second;
      Terms.erase(It);
      return C;
    }
  }
  return 0;
}

std::int64_t LinearTerm::coeffGcd() const {
  std::int64_t G = 0;
  for (const auto &[Var, C] : Terms)
    G = std::gcd(G, C < 0 ? -C : C);
  return G;
}

void LinearTerm::divideExact(std::int64_t K) {
  assert(K != 0 && "division by zero");
  assert(Const % K == 0 && "constant not divisible");
  Const /= K;
  for (auto &[Var, C] : Terms) {
    assert(C % K == 0 && "coefficient not divisible");
    C /= K;
  }
}

ExprRef LinearTerm::toExpr(ExprContext &Ctx) const {
  std::vector<ExprRef> Parts;
  for (const auto &[Var, C] : Terms)
    Parts.push_back(Ctx.mkMul(C, Var));
  if (Const != 0 || Parts.empty())
    Parts.push_back(Ctx.mkInt(Const));
  return Ctx.mkAdd(std::move(Parts));
}

std::string LinearTerm::toString() const {
  std::vector<std::string> Parts;
  for (const auto &[Var, C] : Terms) {
    if (C == 1)
      Parts.push_back(Var->varName());
    else if (C == -1)
      Parts.push_back("-" + Var->varName());
    else
      Parts.push_back(std::to_string(C) + "*" + Var->varName());
  }
  if (Const != 0 || Parts.empty())
    Parts.push_back(std::to_string(Const));
  return join(Parts, " + ");
}

ExprRef LinearAtom::toExpr(ExprContext &Ctx) const {
  return Ctx.mkCmp(Rel, Term.toExpr(Ctx), Ctx.mkInt(0));
}

std::string LinearAtom::toString() const {
  const char *Sym = "?";
  switch (Rel) {
  case ExprKind::Eq:
    Sym = "==";
    break;
  case ExprKind::Ne:
    Sym = "!=";
    break;
  case ExprKind::Le:
    Sym = "<=";
    break;
  case ExprKind::Lt:
    Sym = "<";
    break;
  default:
    break;
  }
  return Term.toString() + " " + Sym + " 0";
}

std::optional<LinearTerm> chute::extractLinearTerm(ExprRef E) {
  switch (E->kind()) {
  case ExprKind::IntConst:
    return LinearTerm(E->intValue());
  case ExprKind::Var: {
    LinearTerm T;
    T.addCoeff(E, 1);
    return T;
  }
  case ExprKind::Add: {
    LinearTerm Sum;
    for (ExprRef Op : E->operands()) {
      auto T = extractLinearTerm(Op);
      if (!T)
        return std::nullopt;
      Sum = Sum.plus(*T);
    }
    return Sum;
  }
  case ExprKind::Mul: {
    auto A = extractLinearTerm(E->operand(0));
    auto B = extractLinearTerm(E->operand(1));
    if (!A || !B)
      return std::nullopt;
    if (A->isConstant())
      return B->scaled(A->constant());
    if (B->isConstant())
      return A->scaled(B->constant());
    return std::nullopt; // Nonlinear product.
  }
  default:
    return std::nullopt;
  }
}

std::optional<LinearAtom> chute::extractLinearAtom(ExprRef E) {
  if (!E->isComparison())
    return std::nullopt;
  auto Lhs = extractLinearTerm(E->operand(0));
  auto Rhs = extractLinearTerm(E->operand(1));
  if (!Lhs || !Rhs)
    return std::nullopt;
  LinearAtom Atom;
  switch (E->kind()) {
  case ExprKind::Eq:
    Atom.Rel = ExprKind::Eq;
    Atom.Term = Lhs->minus(*Rhs);
    break;
  case ExprKind::Ne:
    Atom.Rel = ExprKind::Ne;
    Atom.Term = Lhs->minus(*Rhs);
    break;
  case ExprKind::Le: // L <= R  ==>  L - R <= 0
    Atom.Rel = ExprKind::Le;
    Atom.Term = Lhs->minus(*Rhs);
    break;
  case ExprKind::Lt: // L < R  ==>  L - R + 1 <= 0 (integers)
    Atom.Rel = ExprKind::Le;
    Atom.Term = Lhs->minus(*Rhs);
    Atom.Term.addConstant(1);
    break;
  case ExprKind::Ge: // L >= R  ==>  R - L <= 0
    Atom.Rel = ExprKind::Le;
    Atom.Term = Rhs->minus(*Lhs);
    break;
  case ExprKind::Gt: // L > R  ==>  R - L + 1 <= 0
    Atom.Rel = ExprKind::Le;
    Atom.Term = Rhs->minus(*Lhs);
    Atom.Term.addConstant(1);
    break;
  default:
    return std::nullopt;
  }
  return Atom;
}

namespace {

/// DNF expansion over NNF input. Each result entry is a cube.
std::optional<std::vector<std::vector<LinearAtom>>>
dnfImpl(ExprRef E, std::size_t MaxCubes) {
  if (E->isTrue())
    return std::vector<std::vector<LinearAtom>>{{}};
  if (E->isFalse())
    return std::vector<std::vector<LinearAtom>>{};
  if (E->isComparison()) {
    auto A = extractLinearAtom(E);
    if (!A)
      return std::nullopt;
    return std::vector<std::vector<LinearAtom>>{{*A}};
  }
  if (E->kind() == ExprKind::Or) {
    std::vector<std::vector<LinearAtom>> Out;
    for (ExprRef Op : E->operands()) {
      auto Sub = dnfImpl(Op, MaxCubes);
      if (!Sub)
        return std::nullopt;
      for (auto &Cube : *Sub) {
        Out.push_back(std::move(Cube));
        if (Out.size() > MaxCubes)
          return std::nullopt;
      }
    }
    return Out;
  }
  if (E->kind() == ExprKind::And) {
    std::vector<std::vector<LinearAtom>> Out{{}};
    for (ExprRef Op : E->operands()) {
      auto Sub = dnfImpl(Op, MaxCubes);
      if (!Sub)
        return std::nullopt;
      std::vector<std::vector<LinearAtom>> Next;
      for (const auto &Left : Out) {
        for (const auto &Right : *Sub) {
          std::vector<LinearAtom> Cube = Left;
          Cube.insert(Cube.end(), Right.begin(), Right.end());
          Next.push_back(std::move(Cube));
          if (Next.size() > MaxCubes)
            return std::nullopt;
        }
      }
      Out = std::move(Next);
    }
    return Out;
  }
  return std::nullopt; // Quantifier or residual negation.
}

} // namespace

std::optional<std::vector<std::vector<LinearAtom>>>
chute::dnfAtomCubes(ExprContext &Ctx, ExprRef E, std::size_t MaxCubes) {
  return dnfImpl(toNnf(Ctx, E), MaxCubes);
}

std::optional<std::vector<LinearAtom>> chute::extractConjunction(ExprRef E) {
  std::vector<LinearAtom> Atoms;
  if (E->isTrue())
    return Atoms;
  for (ExprRef C : conjuncts(E)) {
    auto Atom = extractLinearAtom(C);
    if (!Atom)
      return std::nullopt;
    Atoms.push_back(*Atom);
  }
  return Atoms;
}
