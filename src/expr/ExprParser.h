//===- expr/ExprParser.h - Lexer and expression parser --------*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small lexer shared by the expression parser, the CTL parser and
/// the program parser, plus a precedence-climbing parser for
/// arithmetic/boolean expressions.
///
/// Expression grammar (loosest to tightest):
///   implies  :=  or ('->' implies)?
///   or       :=  and ('||' and)*
///   and      :=  unary ('&&' unary)*
///   unary    :=  '!' unary | rel
///   rel      :=  sum (('<='|'<'|'>='|'>'|'=='|'!=') sum)?
///   sum      :=  product (('+'|'-') product)*
///   product  :=  atom ('*' atom)*
///   atom     :=  INT | IDENT | 'true' | 'false' | '-' atom
///             |  '(' implies ')'
///
/// Sorts are checked during parsing; errors are reported as strings
/// with source positions, never as exceptions or assertions.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_EXPR_EXPRPARSER_H
#define CHUTE_EXPR_EXPRPARSER_H

#include "expr/Expr.h"

#include <optional>

namespace chute {

/// One lexical token.
struct Token {
  enum Kind {
    Ident,
    Int,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Plus,
    Minus,
    Star,
    Bang,
    AmpAmp,
    PipePipe,
    Le,
    Lt,
    Ge,
    Gt,
    EqEq,
    Ne,
    Assign, ///< single '='
    Arrow,  ///< '->'
    Eof,
    Error,
  };

  Kind K = Eof;
  std::string Text;       ///< identifier spelling or error message
  std::int64_t Value = 0; ///< integer literals
  std::size_t Pos = 0;    ///< byte offset in the input
};

/// Converts text into tokens. Comments run from "//" to end of line.
class Lexer {
public:
  explicit Lexer(std::string Input);

  /// The current token without consuming it.
  const Token &peek() const { return Current; }

  /// Consumes and returns the current token.
  Token next();

  /// True if the current token is an identifier spelling \p Kw.
  bool peekIs(const std::string &Kw) const {
    return Current.K == Token::Ident && Current.Text == Kw;
  }

  /// Computes "line:column" for a byte offset (for error messages).
  std::string describePos(std::size_t Pos) const;

  /// Opaque lexer checkpoint for backtracking parsers.
  struct State {
    std::size_t Cursor;
    Token Current;
  };

  State save() const { return {Cursor, Current}; }
  void restore(const State &S) {
    Cursor = S.Cursor;
    Current = S.Current;
  }

private:
  Token lexOne();

  std::string Text;
  std::size_t Cursor = 0;
  Token Current;
};

/// Parses expressions from a token stream. The same instance can be
/// embedded inside a larger parser (the program and CTL parsers do
/// this), consuming exactly the tokens of one expression.
class ExprParser {
public:
  ExprParser(ExprContext &Ctx, Lexer &Lex) : Ctx(Ctx), Lex(Lex) {}

  /// Parses a boolean-sorted expression; on failure returns nullopt
  /// and sets \p Err.
  std::optional<ExprRef> parseFormula(std::string &Err);

  /// Parses an integer-sorted expression; on failure returns nullopt
  /// and sets \p Err.
  std::optional<ExprRef> parseTerm(std::string &Err);

  /// Parses an expression of either sort (full precedence, no sort
  /// requirement at the top). Used for C-like condition positions
  /// where `while(1)` means `while(true)`.
  std::optional<ExprRef> parseLoose(std::string &Err);

  /// Parses a single relational atom (`sum RELOP sum`, or
  /// true/false). Used by the CTL parser, which owns the boolean
  /// connectives at the temporal level.
  std::optional<ExprRef> parseAtomFormula(std::string &Err);

private:
  std::optional<ExprRef> parseImplies(std::string &Err);
  std::optional<ExprRef> parseOr(std::string &Err);
  std::optional<ExprRef> parseAnd(std::string &Err);
  std::optional<ExprRef> parseUnary(std::string &Err);
  std::optional<ExprRef> parseRel(std::string &Err);
  std::optional<ExprRef> parseSum(std::string &Err);
  std::optional<ExprRef> parseProduct(std::string &Err);
  std::optional<ExprRef> parseAtom(std::string &Err);

  bool fail(std::string &Err, const std::string &Msg);

  ExprContext &Ctx;
  Lexer &Lex;
};

/// Parses a complete string as a boolean expression. Returns nullopt
/// and sets \p Err on failure (including trailing garbage).
std::optional<ExprRef> parseFormulaString(ExprContext &Ctx,
                                          const std::string &Text,
                                          std::string &Err);

/// Parses a complete string as an integer term.
std::optional<ExprRef> parseTermString(ExprContext &Ctx,
                                       const std::string &Text,
                                       std::string &Err);

} // namespace chute

#endif // CHUTE_EXPR_EXPRPARSER_H
