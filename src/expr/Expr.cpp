//===- expr/Expr.cpp - Hash-consed expression nodes -----------------------===//

#include "expr/Expr.h"

#include "support/StringExtras.h"

#include <algorithm>

using namespace chute;

bool chute::isBoolKind(ExprKind K) {
  switch (K) {
  case ExprKind::IntConst:
  case ExprKind::Var:
  case ExprKind::Add:
  case ExprKind::Mul:
    return false;
  case ExprKind::Eq:
  case ExprKind::Ne:
  case ExprKind::Le:
  case ExprKind::Lt:
  case ExprKind::Ge:
  case ExprKind::Gt:
  case ExprKind::True:
  case ExprKind::False:
  case ExprKind::And:
  case ExprKind::Or:
  case ExprKind::Not:
  case ExprKind::Implies:
  case ExprKind::Exists:
  case ExprKind::Forall:
    return true;
  }
  assert(false && "unknown expression kind");
  return false;
}

bool chute::isComparisonKind(ExprKind K) {
  switch (K) {
  case ExprKind::Eq:
  case ExprKind::Ne:
  case ExprKind::Le:
  case ExprKind::Lt:
  case ExprKind::Ge:
  case ExprKind::Gt:
    return true;
  default:
    return false;
  }
}

ExprContext::ExprContext() {
  TrueNode = intern(ExprKind::True, 0, "", {}, {});
  FalseNode = intern(ExprKind::False, 0, "", {}, {});
}

ExprContext::~ExprContext() = default;

static std::size_t hashNode(ExprKind K, std::int64_t IV,
                            const std::string &N,
                            const std::vector<ExprRef> &Ops,
                            const std::vector<ExprRef> &Bound) {
  std::size_t H = static_cast<std::size_t>(K) * 0x9e3779b97f4a7c15ULL;
  H = hashCombine(H, std::hash<std::int64_t>()(IV));
  H = hashCombine(H, std::hash<std::string>()(N));
  for (ExprRef Op : Ops)
    H = hashCombine(H, std::hash<const void *>()(Op));
  for (ExprRef B : Bound)
    H = hashCombine(H, std::hash<const void *>()(B));
  return H;
}

ExprRef ExprContext::intern(ExprKind K, std::int64_t IV, std::string N,
                            std::vector<ExprRef> Ops,
                            std::vector<ExprRef> Bound) {
  std::lock_guard<std::mutex> Lock(Mu);
  return internLocked(K, IV, std::move(N), std::move(Ops),
                      std::move(Bound));
}

ExprRef ExprContext::internLocked(ExprKind K, std::int64_t IV,
                                  std::string N,
                                  std::vector<ExprRef> Ops,
                                  std::vector<ExprRef> Bound) {
  std::size_t H = hashNode(K, IV, N, Ops, Bound);
  auto &Bucket = Buckets[H];
  for (ExprRef Existing : Bucket) {
    if (Existing->Kind != K || Existing->IntValue != IV ||
        Existing->Name != N || Existing->Ops != Ops ||
        Existing->Bound != Bound)
      continue;
    return Existing;
  }
  auto Node = std::unique_ptr<ExprNode>(new ExprNode(
      K, IV, std::move(N), std::move(Ops), std::move(Bound), H));
  ExprRef Ref = Node.get();
  Nodes.push_back(std::move(Node));
  Bucket.push_back(Ref);
  return Ref;
}

ExprRef ExprContext::mkInt(std::int64_t V) {
  return intern(ExprKind::IntConst, V, "", {}, {});
}

ExprRef ExprContext::mkVar(const std::string &Name) {
  assert(!Name.empty() && "variable names must be non-empty");
  return intern(ExprKind::Var, 0, Name, {}, {});
}

ExprRef ExprContext::mkTrue() { return TrueNode; }
ExprRef ExprContext::mkFalse() { return FalseNode; }

ExprRef ExprContext::freshVar(const std::string &Prefix) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::uint64_t &Counter = FreshCounters[Prefix];
  for (;;) {
    std::string Name = Prefix + "!" + std::to_string(Counter++);
    // A name collides only if the user literally created "prefix!n";
    // interning is idempotent, so probe by structural lookup.
    std::size_t H = hashNode(ExprKind::Var, 0, Name, {}, {});
    auto It = Buckets.find(H);
    bool Exists = false;
    if (It != Buckets.end()) {
      for (ExprRef E : It->second)
        if (E->kind() == ExprKind::Var && E->varName() == Name)
          Exists = true;
    }
    if (!Exists)
      return internLocked(ExprKind::Var, 0, Name, {}, {});
  }
}

//===-- Arithmetic smart constructors ---------------------------------===//

ExprRef ExprContext::mkAdd(std::vector<ExprRef> Ops) {
  std::vector<ExprRef> Flat;
  std::int64_t Const = 0;
  for (ExprRef Op : Ops) {
    assert(!Op->isBool() && "Add operand must be integer-sorted");
    if (Op->kind() == ExprKind::Add) {
      for (ExprRef Inner : Op->operands()) {
        if (Inner->isIntConst())
          Const += Inner->intValue();
        else
          Flat.push_back(Inner);
      }
      continue;
    }
    if (Op->isIntConst()) {
      Const += Op->intValue();
      continue;
    }
    Flat.push_back(Op);
  }
  if (Const != 0 || Flat.empty())
    Flat.push_back(mkInt(Const));
  if (Flat.size() == 1)
    return Flat[0];
  return intern(ExprKind::Add, 0, "", std::move(Flat), {});
}

ExprRef ExprContext::mkSub(ExprRef A, ExprRef B) {
  return mkAdd(A, mkNeg(B));
}

ExprRef ExprContext::mkMul(ExprRef A, ExprRef B) {
  assert(!A->isBool() && !B->isBool() && "Mul operands must be integers");
  if (A->isIntConst() && B->isIntConst())
    return mkInt(A->intValue() * B->intValue());
  // Canonicalise the constant (if any) to the left.
  if (B->isIntConst())
    std::swap(A, B);
  if (A->isIntConst()) {
    if (A->intValue() == 0)
      return mkInt(0);
    if (A->intValue() == 1)
      return B;
    // Fold constant into a nested constant*term product.
    if (B->kind() == ExprKind::Mul && B->operand(0)->isIntConst())
      return mkMul(mkInt(A->intValue() * B->operand(0)->intValue()),
                   B->operand(1));
    // Distribute a constant over a sum to keep terms linear.
    if (B->kind() == ExprKind::Add) {
      std::vector<ExprRef> Terms;
      Terms.reserve(B->numOperands());
      for (ExprRef T : B->operands())
        Terms.push_back(mkMul(A, T));
      return mkAdd(std::move(Terms));
    }
  }
  return intern(ExprKind::Mul, 0, "", {A, B}, {});
}

//===-- Comparisons ----------------------------------------------------===//

ExprRef ExprContext::mkCmp(ExprKind K, ExprRef A, ExprRef B) {
  assert(isComparisonKind(K) && "not a comparison kind");
  assert(!A->isBool() && !B->isBool() && "comparisons take integer terms");
  if (A->isIntConst() && B->isIntConst()) {
    std::int64_t X = A->intValue(), Y = B->intValue();
    switch (K) {
    case ExprKind::Eq:
      return mkBool(X == Y);
    case ExprKind::Ne:
      return mkBool(X != Y);
    case ExprKind::Le:
      return mkBool(X <= Y);
    case ExprKind::Lt:
      return mkBool(X < Y);
    case ExprKind::Ge:
      return mkBool(X >= Y);
    case ExprKind::Gt:
      return mkBool(X > Y);
    default:
      break;
    }
  }
  if (A == B) {
    switch (K) {
    case ExprKind::Eq:
    case ExprKind::Le:
    case ExprKind::Ge:
      return mkTrue();
    case ExprKind::Ne:
    case ExprKind::Lt:
    case ExprKind::Gt:
      return mkFalse();
    default:
      break;
    }
  }
  return intern(K, 0, "", {A, B}, {});
}

//===-- Boolean smart constructors --------------------------------------===//

ExprRef ExprContext::mkAnd(std::vector<ExprRef> Ops) {
  std::vector<ExprRef> Flat;
  for (ExprRef Op : Ops) {
    assert(Op->isBool() && "And operand must be boolean-sorted");
    if (Op->isFalse())
      return mkFalse();
    if (Op->isTrue())
      continue;
    if (Op->kind() == ExprKind::And) {
      for (ExprRef Inner : Op->operands())
        Flat.push_back(Inner);
      continue;
    }
    Flat.push_back(Op);
  }
  // Deduplicate while preserving order.
  std::vector<ExprRef> Unique;
  for (ExprRef E : Flat)
    if (std::find(Unique.begin(), Unique.end(), E) == Unique.end())
      Unique.push_back(E);
  if (Unique.empty())
    return mkTrue();
  if (Unique.size() == 1)
    return Unique[0];
  return intern(ExprKind::And, 0, "", std::move(Unique), {});
}

ExprRef ExprContext::mkOr(std::vector<ExprRef> Ops) {
  std::vector<ExprRef> Flat;
  for (ExprRef Op : Ops) {
    assert(Op->isBool() && "Or operand must be boolean-sorted");
    if (Op->isTrue())
      return mkTrue();
    if (Op->isFalse())
      continue;
    if (Op->kind() == ExprKind::Or) {
      for (ExprRef Inner : Op->operands())
        Flat.push_back(Inner);
      continue;
    }
    Flat.push_back(Op);
  }
  std::vector<ExprRef> Unique;
  for (ExprRef E : Flat)
    if (std::find(Unique.begin(), Unique.end(), E) == Unique.end())
      Unique.push_back(E);
  if (Unique.empty())
    return mkFalse();
  if (Unique.size() == 1)
    return Unique[0];
  return intern(ExprKind::Or, 0, "", std::move(Unique), {});
}

/// Returns the comparison kind of the negated comparison.
static ExprKind negateCmpKind(ExprKind K) {
  switch (K) {
  case ExprKind::Eq:
    return ExprKind::Ne;
  case ExprKind::Ne:
    return ExprKind::Eq;
  case ExprKind::Le:
    return ExprKind::Gt;
  case ExprKind::Lt:
    return ExprKind::Ge;
  case ExprKind::Ge:
    return ExprKind::Lt;
  case ExprKind::Gt:
    return ExprKind::Le;
  default:
    assert(false && "not a comparison");
    return K;
  }
}

ExprRef ExprContext::mkNot(ExprRef E) {
  assert(E->isBool() && "Not takes a boolean");
  if (E->isTrue())
    return mkFalse();
  if (E->isFalse())
    return mkTrue();
  if (E->kind() == ExprKind::Not)
    return E->operand(0);
  if (E->isComparison())
    return mkCmp(negateCmpKind(E->kind()), E->operand(0), E->operand(1));
  return intern(ExprKind::Not, 0, "", {E}, {});
}

ExprRef ExprContext::mkImplies(ExprRef A, ExprRef B) {
  assert(A->isBool() && B->isBool() && "Implies takes booleans");
  if (A->isTrue())
    return B;
  if (A->isFalse() || B->isTrue())
    return mkTrue();
  if (B->isFalse())
    return mkNot(A);
  return intern(ExprKind::Implies, 0, "", {A, B}, {});
}

ExprRef ExprContext::mkExists(std::vector<ExprRef> Bound, ExprRef Body) {
  assert(Body->isBool() && "quantifier body must be boolean");
  std::vector<ExprRef> Used;
  for (ExprRef V : Bound) {
    assert(V->isVar() && "bound entries must be variables");
    if (occursFree(Body, V))
      Used.push_back(V);
  }
  if (Used.empty())
    return Body;
  return intern(ExprKind::Exists, 0, "", {Body}, std::move(Used));
}

ExprRef ExprContext::mkForall(std::vector<ExprRef> Bound, ExprRef Body) {
  assert(Body->isBool() && "quantifier body must be boolean");
  std::vector<ExprRef> Used;
  for (ExprRef V : Bound) {
    assert(V->isVar() && "bound entries must be variables");
    if (occursFree(Body, V))
      Used.push_back(V);
  }
  if (Used.empty())
    return Body;
  return intern(ExprKind::Forall, 0, "", {Body}, std::move(Used));
}

//===-- Free helpers ------------------------------------------------------===//

static void collectFreeVarsImpl(ExprRef E, std::vector<ExprRef> &Out,
                                std::vector<ExprRef> &BoundStack) {
  if (E->isVar()) {
    if (std::find(BoundStack.begin(), BoundStack.end(), E) !=
        BoundStack.end())
      return;
    if (std::find(Out.begin(), Out.end(), E) == Out.end())
      Out.push_back(E);
    return;
  }
  std::size_t Mark = BoundStack.size();
  for (ExprRef B : E->boundVars())
    BoundStack.push_back(B);
  for (ExprRef Op : E->operands())
    collectFreeVarsImpl(Op, Out, BoundStack);
  BoundStack.resize(Mark);
}

void chute::collectFreeVars(ExprRef E, std::vector<ExprRef> &Out) {
  std::vector<ExprRef> BoundStack;
  collectFreeVarsImpl(E, Out, BoundStack);
}

std::vector<ExprRef> chute::freeVars(ExprRef E) {
  std::vector<ExprRef> Out;
  collectFreeVars(E, Out);
  return Out;
}

bool chute::occursFree(ExprRef E, ExprRef V) {
  std::vector<ExprRef> Vars = freeVars(E);
  return std::find(Vars.begin(), Vars.end(), V) != Vars.end();
}

std::vector<ExprRef> chute::conjuncts(ExprRef E) {
  if (E->kind() == ExprKind::And)
    return E->operands();
  return {E};
}

std::vector<ExprRef> chute::disjuncts(ExprRef E) {
  if (E->kind() == ExprKind::Or)
    return E->operands();
  return {E};
}

std::int64_t chute::evaluate(
    ExprRef E, const std::unordered_map<std::string, std::int64_t> &Env) {
  switch (E->kind()) {
  case ExprKind::IntConst:
    return E->intValue();
  case ExprKind::Var: {
    auto It = Env.find(E->varName());
    assert(It != Env.end() && "unassigned variable in evaluate()");
    return It->second;
  }
  case ExprKind::Add: {
    std::int64_t Sum = 0;
    for (ExprRef Op : E->operands())
      Sum += evaluate(Op, Env);
    return Sum;
  }
  case ExprKind::Mul:
    return evaluate(E->operand(0), Env) * evaluate(E->operand(1), Env);
  case ExprKind::Eq:
    return evaluate(E->operand(0), Env) == evaluate(E->operand(1), Env);
  case ExprKind::Ne:
    return evaluate(E->operand(0), Env) != evaluate(E->operand(1), Env);
  case ExprKind::Le:
    return evaluate(E->operand(0), Env) <= evaluate(E->operand(1), Env);
  case ExprKind::Lt:
    return evaluate(E->operand(0), Env) < evaluate(E->operand(1), Env);
  case ExprKind::Ge:
    return evaluate(E->operand(0), Env) >= evaluate(E->operand(1), Env);
  case ExprKind::Gt:
    return evaluate(E->operand(0), Env) > evaluate(E->operand(1), Env);
  case ExprKind::True:
    return 1;
  case ExprKind::False:
    return 0;
  case ExprKind::And: {
    for (ExprRef Op : E->operands())
      if (!evaluate(Op, Env))
        return 0;
    return 1;
  }
  case ExprKind::Or: {
    for (ExprRef Op : E->operands())
      if (evaluate(Op, Env))
        return 1;
    return 0;
  }
  case ExprKind::Not:
    return !evaluate(E->operand(0), Env);
  case ExprKind::Implies:
    return !evaluate(E->operand(0), Env) || evaluate(E->operand(1), Env);
  case ExprKind::Exists:
  case ExprKind::Forall:
    assert(false && "cannot evaluate quantified formulas");
    return 0;
  }
  assert(false && "unknown expression kind");
  return 0;
}
