//===- ts/PathEncoding.cpp - SSA encodings of command paths -----------------===//

#include "ts/PathEncoding.h"

#include "expr/ExprBuilder.h"

using namespace chute;

std::vector<ExprRef>
PathFormula::varsAt(ExprContext &Ctx, std::size_t Pos,
                    const std::vector<ExprRef> &Vars) const {
  assert(Pos < IndexAt.size() && "position out of range");
  std::vector<ExprRef> Out;
  Out.reserve(Vars.size());
  for (ExprRef V : Vars) {
    auto It = IndexAt[Pos].find(V->varName());
    unsigned I = It == IndexAt[Pos].end() ? 0 : It->second;
    Out.push_back(ssaVar(Ctx, V, I));
  }
  return Out;
}

std::vector<ExprRef> PathFormula::allSsaVars() const {
  return freeVars(Formula);
}

ExprRef PathFormula::stateAt(ExprContext &Ctx, ExprRef State,
                             std::size_t Pos) const {
  assert(Pos < IndexAt.size() && "position out of range");
  return toSsa(Ctx, State, IndexAt[Pos]);
}

PathFormula chute::encodePath(ExprContext &Ctx, const Program &P,
                              const std::vector<unsigned> &Path) {
  PathFormula Result;
  std::unordered_map<std::string, unsigned> Index;
  Result.IndexAt.push_back(Index);

  std::vector<ExprRef> Constraints;
  for (unsigned Id : Path) {
    const Command &Cmd = P.edge(Id).Cmd;
    switch (Cmd.kind()) {
    case Command::Kind::Assume:
      Constraints.push_back(toSsa(Ctx, Cmd.cond(), Index));
      break;
    case Command::Kind::Assign: {
      ExprRef RhsSsa = toSsa(Ctx, Cmd.rhs(), Index);
      unsigned &I = Index[Cmd.var()->varName()];
      ++I;
      Constraints.push_back(
          Ctx.mkEq(ssaVar(Ctx, Cmd.var(), I), RhsSsa));
      break;
    }
    case Command::Kind::Havoc: {
      unsigned &I = Index[Cmd.var()->varName()];
      ++I; // Fresh, unconstrained index.
      break;
    }
    }
    Result.IndexAt.push_back(Index);
  }
  Result.Formula = Ctx.mkAnd(std::move(Constraints));
  return Result;
}

bool chute::pathFeasibleFromInit(Smt &S, const Program &P,
                                 const std::vector<unsigned> &Path) {
  ExprContext &Ctx = S.exprContext();
  if (!Path.empty())
    assert(P.edge(Path.front()).Src == P.entry() &&
           "path must start at the entry");
  PathFormula F = encodePath(Ctx, P, Path);
  ExprRef InitSsa = F.stateAt(Ctx, P.init(), 0);
  return S.isSat(Ctx.mkAnd(InitSsa, F.Formula));
}
