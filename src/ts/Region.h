//===- ts/Region.h - Symbolic sets of program states ----------*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Region is a symbolic set of states of a CFG program: one state
/// formula per control location. The paper's proof system (Figure 2)
/// manipulates exactly such sets — start sets X, chutes C and
/// frontiers F are all regions here.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_TS_REGION_H
#define CHUTE_TS_REGION_H

#include "program/Cfg.h"
#include "smt/SmtQueries.h"

namespace chute {

/// One formula per location; the denoted state set is
/// { (l, v) | v |= at(l) }.
class Region {
public:
  Region() = default;

  /// A region assigning \p Default at every one of \p NumLocs
  /// locations.
  Region(std::size_t NumLocs, ExprRef Default)
      : Formulas(NumLocs, Default) {}

  /// The full state space of \p P.
  static Region top(const Program &P);
  /// The empty set over \p P's locations.
  static Region bottom(const Program &P);
  /// The same formula \p E at every location of \p P.
  static Region uniform(const Program &P, ExprRef E);
  /// \p E at location \p L, empty elsewhere.
  static Region atLocation(const Program &P, Loc L, ExprRef E);
  /// The initial states of \p P (init formula at the entry).
  static Region initial(const Program &P);

  std::size_t size() const { return Formulas.size(); }
  bool empty() const { return Formulas.empty(); }

  ExprRef at(Loc L) const {
    assert(L < Formulas.size() && "location out of range");
    return Formulas[L];
  }

  void set(Loc L, ExprRef E) {
    assert(L < Formulas.size() && "location out of range");
    Formulas[L] = E;
  }

  /// Pointwise intersection with another region.
  Region intersect(ExprContext &Ctx, const Region &Other) const;
  /// Pointwise union with another region.
  Region unite(ExprContext &Ctx, const Region &Other) const;
  /// Pointwise set difference (conjoin the negation).
  Region minus(ExprContext &Ctx, const Region &Other) const;
  /// Conjoins \p E at every location.
  Region constrain(ExprContext &Ctx, ExprRef E) const;
  /// Simplifies every formula.
  Region simplified(ExprContext &Ctx) const;

  /// True when every location's formula is unsatisfiable.
  bool isEmpty(Smt &S) const;

  /// True when this region is contained in \p Other (per-location
  /// implication). Unknown solver answers count as "not contained".
  bool subsetOf(Smt &S, const Region &Other) const;

  /// True when both containments hold.
  bool equals(Smt &S, const Region &Other) const;

  /// Solver-assisted intersection that keeps formulas in clean
  /// disjunct form: per location, each disjunct of this region is
  /// combined with \p Other's formula, unsatisfiable combinations are
  /// dropped, and implied constraints are not duplicated.
  Region intersectPruned(Smt &S, const Region &Other) const;

  /// Solver-assisted set difference: disjuncts disjoint from
  /// \p Other are kept verbatim, subsumed ones are dropped, and only
  /// genuinely overlapping disjuncts get the negation conjoined.
  Region minusPruned(Smt &S, const Region &Other) const;

  /// Renders as "loc: formula" lines, omitting empty locations.
  std::string toString(const Program &P) const;

private:
  std::vector<ExprRef> Formulas;
};

} // namespace chute

#endif // CHUTE_TS_REGION_H
