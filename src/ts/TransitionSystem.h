//===- ts/TransitionSystem.h - Symbolic transition systems ----*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic view of a CFG program as a transition system
/// M = (S, R, I) with S = Loc x Z^Vars: per-edge transition-relation
/// formulas over current/primed variables, and symbolic pre/post
/// operators over Regions.
///
/// Chute restriction is supported uniformly: every operator takes an
/// optional chute Region C and restricts transitions to land inside
/// C (the semantics of the paper's `assume(C_pi)` instrumentation).
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_TS_TRANSITIONSYSTEM_H
#define CHUTE_TS_TRANSITIONSYSTEM_H

#include "qe/QeEngine.h"
#include "ts/Region.h"

#include <mutex>

namespace chute {

/// Symbolic transition-system operators over a Program.
class TransitionSystem {
public:
  /// \p Qe is used to keep post() results quantifier-free.
  TransitionSystem(const Program &P, Smt &Solver, QeEngine &Qe);

  const Program &program() const { return Prog; }

  /// Transition relation formula of edge \p Id over Vars/Vars'.
  ExprRef edgeRelation(unsigned Id) const;

  /// One-step strongest postcondition of \p R across all edges; the
  /// result is quantifier-free (projection via the QE engine).
  /// When \p Chute is non-null, transitions must land inside it.
  Region post(const Region &R, const Region *Chute = nullptr);

  /// Strongest postcondition of \p Pre across the single edge \p Id
  /// (quantifier-free; \p Pre is a formula at the edge's source).
  ExprRef postEdge(unsigned Id, ExprRef Pre);

  /// States whose every outgoing transition (restricted to \p Chute
  /// targets when non-null) lands in \p R. Deadlocked states qualify
  /// vacuously; intersect with hasSuccessor() to exclude them.
  Region preAll(const Region &R, const Region *Chute = nullptr) const;

  /// States with at least one transition into \p R (and into \p Chute
  /// when non-null).
  Region preExists(const Region &R, const Region *Chute = nullptr) const;

  /// States with at least one successor at all (inside \p Chute when
  /// non-null). With a total relation and no chute this is top.
  Region hasSuccessor(const Region *Chute = nullptr) const;

  /// Eliminates quantifiers from every location formula of \p R
  /// (post() already does this; exposed for reuse).
  Region eliminate(const Region &R);

private:
  ExprRef projectOrKeep(ExprRef E);

  const Program &Prog;
  Smt &Solver;
  QeEngine &Qe;
  /// Guards EdgeRelCache: edgeRelation may be called from concurrent
  /// proof obligations.
  mutable std::mutex EdgeRelMu;
  mutable std::vector<ExprRef> EdgeRelCache;
};

} // namespace chute

#endif // CHUTE_TS_TRANSITIONSYSTEM_H
