//===- ts/Region.cpp - Symbolic sets of program states ----------------------===//

#include "ts/Region.h"

#include "support/StringExtras.h"
#include "support/TaskPool.h"

#include <optional>

using namespace chute;

Region Region::top(const Program &P) {
  return Region(P.numLocations(), P.exprContext().mkTrue());
}

Region Region::bottom(const Program &P) {
  return Region(P.numLocations(), P.exprContext().mkFalse());
}

Region Region::uniform(const Program &P, ExprRef E) {
  return Region(P.numLocations(), E);
}

Region Region::atLocation(const Program &P, Loc L, ExprRef E) {
  Region R = bottom(P);
  R.set(L, E);
  return R;
}

Region Region::initial(const Program &P) {
  return atLocation(P, P.entry(), P.init());
}

Region Region::intersect(ExprContext &Ctx, const Region &Other) const {
  assert(size() == Other.size() && "region size mismatch");
  Region R = *this;
  for (std::size_t L = 0; L < Formulas.size(); ++L)
    R.Formulas[L] = Ctx.mkAnd(Formulas[L], Other.Formulas[L]);
  return R;
}

Region Region::unite(ExprContext &Ctx, const Region &Other) const {
  assert(size() == Other.size() && "region size mismatch");
  Region R = *this;
  for (std::size_t L = 0; L < Formulas.size(); ++L)
    R.Formulas[L] = Ctx.mkOr(Formulas[L], Other.Formulas[L]);
  return R;
}

Region Region::minus(ExprContext &Ctx, const Region &Other) const {
  assert(size() == Other.size() && "region size mismatch");
  Region R = *this;
  for (std::size_t L = 0; L < Formulas.size(); ++L)
    R.Formulas[L] =
        Ctx.mkAnd(Formulas[L], Ctx.mkNot(Other.Formulas[L]));
  return R;
}

Region Region::constrain(ExprContext &Ctx, ExprRef E) const {
  Region R = *this;
  for (std::size_t L = 0; L < Formulas.size(); ++L)
    R.Formulas[L] = Ctx.mkAnd(Formulas[L], E);
  return R;
}

Region Region::simplified(ExprContext &Ctx) const {
  Region R = *this;
  for (std::size_t L = 0; L < Formulas.size(); ++L)
    R.Formulas[L] = simplify(Ctx, Formulas[L]);
  return R;
}

bool Region::isEmpty(Smt &S) const {
  // With a parallel pool, discharge every location at once; the
  // conjunction of independent per-location verdicts is the same
  // either way, the early exit only saves queries sequentially.
  if (TaskPool::global().parallel() && Formulas.size() > 1) {
    std::vector<SatResult> Rs = S.checkSatBatch(Formulas);
    for (SatResult R : Rs)
      if (R != SatResult::Unsat)
        return false;
    return true;
  }
  for (ExprRef F : Formulas)
    if (!S.isUnsat(F))
      return false;
  return true;
}

bool Region::subsetOf(Smt &S, const Region &Other) const {
  assert(size() == Other.size() && "region size mismatch");
  if (TaskPool::global().parallel() && Formulas.size() > 1) {
    ExprContext &Ctx = S.exprContext();
    std::vector<ExprRef> Obligations;
    Obligations.reserve(Formulas.size());
    for (std::size_t L = 0; L < Formulas.size(); ++L)
      Obligations.push_back(Ctx.mkAnd(
          Formulas[L], Ctx.mkNot(Other.Formulas[L])));
    std::vector<SatResult> Rs = S.checkSatBatch(Obligations);
    for (SatResult R : Rs)
      if (R != SatResult::Unsat)
        return false;
    return true;
  }
  for (std::size_t L = 0; L < Formulas.size(); ++L)
    if (!S.implies(Formulas[L], Other.Formulas[L]))
      return false;
  return true;
}

bool Region::equals(Smt &S, const Region &Other) const {
  return subsetOf(S, Other) && Other.subsetOf(S, *this);
}

Region Region::intersectPruned(Smt &S, const Region &Other) const {
  assert(size() == Other.size() && "region size mismatch");
  ExprContext &Ctx = S.exprContext();
  Region R = *this;

  // Each (location, disjunct) decision is independent of the rest,
  // so the whole grid fans out across the pool; the in-order merge
  // below rebuilds exactly the formula the sequential loop built.
  struct Slot {
    std::size_t L;
    ExprRef D;
    std::optional<ExprRef> Keep; ///< nullopt = dropped
  };
  std::vector<Slot> Slots;
  std::vector<std::size_t> PerLoc(Formulas.size(), 0);
  for (std::size_t L = 0; L < Formulas.size(); ++L) {
    for (ExprRef D : disjuncts(Formulas[L])) {
      Slots.push_back(Slot{L, D, std::nullopt});
      ++PerLoc[L];
    }
  }

  TaskPool::global().parallelFor(Slots.size(), [&](std::size_t I) {
    Slot &Sl = Slots[I];
    ExprRef O = Other.Formulas[Sl.L];
    if (S.implies(Sl.D, O)) {
      Sl.Keep = Sl.D;
      return;
    }
    ExprRef C = simplify(Ctx, Ctx.mkAnd(Sl.D, O));
    // Keep on Unknown: dropping a possibly-nonempty part could
    // erase an obligation downstream.
    if (!C->isFalse() && !S.isUnsat(C))
      Sl.Keep = C;
  });

  std::size_t Next = 0;
  for (std::size_t L = 0; L < Formulas.size(); ++L) {
    std::vector<ExprRef> Kept;
    for (std::size_t J = 0; J < PerLoc[L]; ++J, ++Next)
      if (Slots[Next].Keep)
        Kept.push_back(*Slots[Next].Keep);
    R.Formulas[L] = Ctx.mkOr(std::move(Kept));
  }
  return R;
}

Region Region::minusPruned(Smt &S, const Region &Other) const {
  assert(size() == Other.size() && "region size mismatch");
  ExprContext &Ctx = S.exprContext();
  Region R = *this;

  // Same slot/merge scheme as intersectPruned.
  struct Slot {
    std::size_t L;
    ExprRef D;
    std::optional<ExprRef> Keep;
  };
  std::vector<Slot> Slots;
  std::vector<std::size_t> PerLoc(Formulas.size(), 0);
  for (std::size_t L = 0; L < Formulas.size(); ++L) {
    if (Other.Formulas[L]->isFalse())
      continue; // location untouched; PerLoc stays 0
    for (ExprRef D : disjuncts(Formulas[L])) {
      Slots.push_back(Slot{L, D, std::nullopt});
      ++PerLoc[L];
    }
  }

  TaskPool::global().parallelFor(Slots.size(), [&](std::size_t I) {
    Slot &Sl = Slots[I];
    ExprRef O = Other.Formulas[Sl.L];
    if (S.isUnsat(Ctx.mkAnd(Sl.D, O))) {
      Sl.Keep = Sl.D; // Disjoint: keep as-is.
      return;
    }
    if (S.implies(Sl.D, O))
      return; // Fully covered: drop.
    ExprRef C = simplify(Ctx, Ctx.mkAnd(Sl.D, Ctx.mkNot(O)));
    if (!C->isFalse())
      Sl.Keep = C;
  });

  std::size_t Next = 0;
  for (std::size_t L = 0; L < Formulas.size(); ++L) {
    if (Other.Formulas[L]->isFalse())
      continue;
    std::vector<ExprRef> Kept;
    for (std::size_t J = 0; J < PerLoc[L]; ++J, ++Next)
      if (Slots[Next].Keep)
        Kept.push_back(*Slots[Next].Keep);
    R.Formulas[L] = Ctx.mkOr(std::move(Kept));
  }
  return R;
}

std::string Region::toString(const Program &P) const {
  std::string S;
  for (std::size_t L = 0; L < Formulas.size(); ++L) {
    if (Formulas[L]->isFalse())
      continue;
    S += formatStr("  %s: %s\n", P.locationName(static_cast<Loc>(L)).c_str(),
                   Formulas[L]->toString().c_str());
  }
  if (S.empty())
    S = "  (empty)\n";
  return S;
}
