//===- ts/Region.cpp - Symbolic sets of program states ----------------------===//

#include "ts/Region.h"

#include "support/StringExtras.h"

using namespace chute;

Region Region::top(const Program &P) {
  return Region(P.numLocations(), P.exprContext().mkTrue());
}

Region Region::bottom(const Program &P) {
  return Region(P.numLocations(), P.exprContext().mkFalse());
}

Region Region::uniform(const Program &P, ExprRef E) {
  return Region(P.numLocations(), E);
}

Region Region::atLocation(const Program &P, Loc L, ExprRef E) {
  Region R = bottom(P);
  R.set(L, E);
  return R;
}

Region Region::initial(const Program &P) {
  return atLocation(P, P.entry(), P.init());
}

Region Region::intersect(ExprContext &Ctx, const Region &Other) const {
  assert(size() == Other.size() && "region size mismatch");
  Region R = *this;
  for (std::size_t L = 0; L < Formulas.size(); ++L)
    R.Formulas[L] = Ctx.mkAnd(Formulas[L], Other.Formulas[L]);
  return R;
}

Region Region::unite(ExprContext &Ctx, const Region &Other) const {
  assert(size() == Other.size() && "region size mismatch");
  Region R = *this;
  for (std::size_t L = 0; L < Formulas.size(); ++L)
    R.Formulas[L] = Ctx.mkOr(Formulas[L], Other.Formulas[L]);
  return R;
}

Region Region::minus(ExprContext &Ctx, const Region &Other) const {
  assert(size() == Other.size() && "region size mismatch");
  Region R = *this;
  for (std::size_t L = 0; L < Formulas.size(); ++L)
    R.Formulas[L] =
        Ctx.mkAnd(Formulas[L], Ctx.mkNot(Other.Formulas[L]));
  return R;
}

Region Region::constrain(ExprContext &Ctx, ExprRef E) const {
  Region R = *this;
  for (std::size_t L = 0; L < Formulas.size(); ++L)
    R.Formulas[L] = Ctx.mkAnd(Formulas[L], E);
  return R;
}

Region Region::simplified(ExprContext &Ctx) const {
  Region R = *this;
  for (std::size_t L = 0; L < Formulas.size(); ++L)
    R.Formulas[L] = simplify(Ctx, Formulas[L]);
  return R;
}

bool Region::isEmpty(Smt &S) const {
  for (ExprRef F : Formulas)
    if (!S.isUnsat(F))
      return false;
  return true;
}

bool Region::subsetOf(Smt &S, const Region &Other) const {
  assert(size() == Other.size() && "region size mismatch");
  for (std::size_t L = 0; L < Formulas.size(); ++L)
    if (!S.implies(Formulas[L], Other.Formulas[L]))
      return false;
  return true;
}

bool Region::equals(Smt &S, const Region &Other) const {
  return subsetOf(S, Other) && Other.subsetOf(S, *this);
}

Region Region::intersectPruned(Smt &S, const Region &Other) const {
  assert(size() == Other.size() && "region size mismatch");
  ExprContext &Ctx = S.exprContext();
  Region R = *this;
  for (std::size_t L = 0; L < Formulas.size(); ++L) {
    std::vector<ExprRef> Kept;
    for (ExprRef D : disjuncts(Formulas[L])) {
      if (S.implies(D, Other.Formulas[L])) {
        Kept.push_back(D);
        continue;
      }
      ExprRef C = simplify(Ctx, Ctx.mkAnd(D, Other.Formulas[L]));
      // Keep on Unknown: dropping a possibly-nonempty part could
      // erase an obligation downstream.
      if (!C->isFalse() && !S.isUnsat(C))
        Kept.push_back(C);
    }
    R.Formulas[L] = Ctx.mkOr(std::move(Kept));
  }
  return R;
}

Region Region::minusPruned(Smt &S, const Region &Other) const {
  assert(size() == Other.size() && "region size mismatch");
  ExprContext &Ctx = S.exprContext();
  Region R = *this;
  for (std::size_t L = 0; L < Formulas.size(); ++L) {
    ExprRef O = Other.Formulas[L];
    if (O->isFalse())
      continue;
    std::vector<ExprRef> Kept;
    for (ExprRef D : disjuncts(Formulas[L])) {
      if (S.isUnsat(Ctx.mkAnd(D, O))) {
        Kept.push_back(D); // Disjoint: keep as-is.
        continue;
      }
      if (S.implies(D, O))
        continue; // Fully covered: drop.
      ExprRef C = simplify(Ctx, Ctx.mkAnd(D, Ctx.mkNot(O)));
      if (!C->isFalse())
        Kept.push_back(C);
    }
    R.Formulas[L] = Ctx.mkOr(std::move(Kept));
  }
  return R;
}

std::string Region::toString(const Program &P) const {
  std::string S;
  for (std::size_t L = 0; L < Formulas.size(); ++L) {
    if (Formulas[L]->isFalse())
      continue;
    S += formatStr("  %s: %s\n", P.locationName(static_cast<Loc>(L)).c_str(),
                   Formulas[L]->toString().c_str());
  }
  if (S.empty())
    S = "  (empty)\n";
  return S;
}
