//===- ts/PathEncoding.h - SSA encodings of command paths -----*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encodes a finite CFG path as a conjunction of static-single-
/// assignment constraints, exactly the representation the paper uses
/// for counterexample paths in Section 2 and in SYNTHcp (Section 5.2):
/// each assignment bumps the SSA index of its target, assumes
/// constrain the current indices, and havocs bump the index without
/// constraining it.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_TS_PATHENCODING_H
#define CHUTE_TS_PATHENCODING_H

#include "program/Cfg.h"
#include "smt/SmtQueries.h"

namespace chute {

/// SSA encoding of a finite path.
struct PathFormula {
  /// Conjunction of the SSA constraints of every step.
  ExprRef Formula = nullptr;

  /// IndexAt[i] maps each variable name to its live SSA index at path
  /// position i (position 0 is before the first command; position
  /// Edges.size() is after the last).
  std::vector<std::unordered_map<std::string, unsigned>> IndexAt;

  /// The SSA variables live at position \p Pos for \p Vars.
  std::vector<ExprRef> varsAt(ExprContext &Ctx, std::size_t Pos,
                              const std::vector<ExprRef> &Vars) const;

  /// All SSA variables mentioned anywhere in the formula.
  std::vector<ExprRef> allSsaVars() const;

  /// Rewrites a state formula over program variables into its SSA
  /// copy at position \p Pos.
  ExprRef stateAt(ExprContext &Ctx, ExprRef State, std::size_t Pos) const;
};

/// Encodes the edge sequence \p Path of \p P. The sequence need not
/// start at the entry; the state at position 0 is unconstrained.
PathFormula encodePath(ExprContext &Ctx, const Program &P,
                       const std::vector<unsigned> &Path);

/// True when \p Path can be executed from an initial state of \p P
/// (the path must start at the entry location).
bool pathFeasibleFromInit(Smt &S, const Program &P,
                          const std::vector<unsigned> &Path);

} // namespace chute

#endif // CHUTE_TS_PATHENCODING_H
