//===- ts/TransitionSystem.cpp - Symbolic transition systems ----------------===//

#include "ts/TransitionSystem.h"

#include "support/Debug.h"

using namespace chute;

TransitionSystem::TransitionSystem(const Program &P, Smt &Solver,
                                   QeEngine &Qe)
    : Prog(P), Solver(Solver), Qe(Qe) {}

ExprRef TransitionSystem::edgeRelation(unsigned Id) const {
  if (EdgeRelCache.size() != Prog.edges().size())
    EdgeRelCache.assign(Prog.edges().size(), nullptr);
  if (EdgeRelCache[Id] == nullptr)
    EdgeRelCache[Id] = Prog.edge(Id).Cmd.transitionFormula(
        Prog.exprContext(), Prog.variables());
  return EdgeRelCache[Id];
}

ExprRef TransitionSystem::projectOrKeep(ExprRef E) {
  ExprContext &Ctx = Prog.exprContext();
  if (E->kind() == ExprKind::Or) {
    std::vector<ExprRef> Parts;
    Parts.reserve(E->numOperands());
    for (ExprRef Op : E->operands())
      Parts.push_back(projectOrKeep(Op));
    return Ctx.mkOr(std::move(Parts));
  }
  if (E->kind() == ExprKind::Exists) {
    // Keep the projection exact and disjunct-structured: expand the
    // body to cubes and project each with Fourier-Motzkin.
    auto Cubes = dnfAtomCubes(Ctx, E->body());
    if (Cubes) {
      std::vector<ExprRef> Parts;
      for (auto &Cube : *Cubes) {
        FmResult R =
            fourierMotzkinProject(Ctx, std::move(Cube), E->boundVars());
        Parts.push_back(simplify(Ctx, R.Formula));
      }
      return Ctx.mkOr(std::move(Parts));
    }
    auto R = Qe.projectExists(E->body(), E->boundVars());
    if (R)
      return *R;
  }
  return E;
}

Region TransitionSystem::post(const Region &R, const Region *Chute) {
  ExprContext &Ctx = Prog.exprContext();
  Region Out = Region::bottom(Prog);
  for (const Edge &E : Prog.edges()) {
    ExprRef Pre = R.at(E.Src);
    if (Pre->isFalse())
      continue;
    // Distribute over disjuncts to keep the QE inputs conjunctive.
    std::vector<ExprRef> Results;
    for (ExprRef D : disjuncts(Pre)) {
      ExprRef Sp = E.Cmd.post(Ctx, D, Prog.variables());
      Results.push_back(projectOrKeep(Sp));
    }
    ExprRef PostF = Ctx.mkOr(std::move(Results));
    if (Chute != nullptr)
      PostF = Ctx.mkAnd(PostF, Chute->at(E.Dst));
    Out.set(E.Dst, Ctx.mkOr(Out.at(E.Dst), PostF));
  }
  return Out.simplified(Ctx);
}

ExprRef TransitionSystem::postEdge(unsigned Id, ExprRef Pre) {
  ExprContext &Ctx = Prog.exprContext();
  const Edge &E = Prog.edge(Id);
  std::vector<ExprRef> Results;
  for (ExprRef D : disjuncts(Pre)) {
    ExprRef Sp = E.Cmd.post(Ctx, D, Prog.variables());
    Results.push_back(projectOrKeep(Sp));
  }
  return simplify(Ctx, Ctx.mkOr(std::move(Results)));
}

Region TransitionSystem::preAll(const Region &R, const Region *Chute) const {
  ExprContext &Ctx = Prog.exprContext();
  Region Out = Region::top(Prog);
  for (const Edge &E : Prog.edges()) {
    ExprRef Target = R.at(E.Dst);
    if (Chute != nullptr)
      Target = Ctx.mkImplies(Chute->at(E.Dst), Target);
    ExprRef Wp = E.Cmd.wp(Ctx, Target);
    Out.set(E.Src, Ctx.mkAnd(Out.at(E.Src), Wp));
  }
  return Out.simplified(Ctx);
}

Region TransitionSystem::preExists(const Region &R,
                                   const Region *Chute) const {
  ExprContext &Ctx = Prog.exprContext();
  Region Out = Region::bottom(Prog);
  for (const Edge &E : Prog.edges()) {
    ExprRef Target = R.at(E.Dst);
    if (Chute != nullptr)
      Target = Ctx.mkAnd(Target, Chute->at(E.Dst));
    if (Target->isFalse())
      continue;
    ExprRef Pre = E.Cmd.preExists(Ctx, Target);
    Out.set(E.Src, Ctx.mkOr(Out.at(E.Src), Pre));
  }
  return Out.simplified(Ctx);
}

Region TransitionSystem::hasSuccessor(const Region *Chute) const {
  Region Top = Region::top(Prog);
  return preExists(Top, Chute);
}

Region TransitionSystem::eliminate(const Region &R) {
  Region Out = R;
  for (Loc L = 0; L < Prog.numLocations(); ++L)
    Out.set(L, projectOrKeep(Out.at(L)));
  return Out.simplified(Prog.exprContext());
}
