//===- ts/TransitionSystem.cpp - Symbolic transition systems ----------------===//

#include "ts/TransitionSystem.h"

#include "support/Debug.h"
#include "support/TaskPool.h"

#include <atomic>

using namespace chute;

TransitionSystem::TransitionSystem(const Program &P, Smt &Solver,
                                   QeEngine &Qe)
    : Prog(P), Solver(Solver), Qe(Qe) {}

ExprRef TransitionSystem::edgeRelation(unsigned Id) const {
  std::lock_guard<std::mutex> Lock(EdgeRelMu);
  if (EdgeRelCache.size() != Prog.edges().size())
    EdgeRelCache.assign(Prog.edges().size(), nullptr);
  if (EdgeRelCache[Id] == nullptr)
    EdgeRelCache[Id] = Prog.edge(Id).Cmd.transitionFormula(
        Prog.exprContext(), Prog.variables());
  return EdgeRelCache[Id];
}

ExprRef TransitionSystem::projectOrKeep(ExprRef E) {
  ExprContext &Ctx = Prog.exprContext();
  if (E->kind() == ExprKind::Or) {
    std::vector<ExprRef> Parts;
    Parts.reserve(E->numOperands());
    for (ExprRef Op : E->operands())
      Parts.push_back(projectOrKeep(Op));
    return Ctx.mkOr(std::move(Parts));
  }
  if (E->kind() == ExprKind::Exists) {
    // Keep the projection exact and disjunct-structured: expand the
    // body to cubes and project each with Fourier-Motzkin. Cubes are
    // independent, so they fan out across the pool (inline when the
    // pool is sequential or we are already inside a pool task).
    auto Cubes = dnfAtomCubes(Ctx, E->body());
    if (Cubes) {
      std::vector<ExprRef> Parts((*Cubes).size(), nullptr);
      std::atomic<bool> Overflowed{false};
      TaskPool::global().parallelFor(
          (*Cubes).size(), [&](std::size_t I) {
            FmResult R = fourierMotzkinProject(
                Ctx, std::move((*Cubes)[I]), E->boundVars());
            if (R.Overflow) {
              Overflowed.store(true, std::memory_order_relaxed);
              return;
            }
            Parts[I] = simplify(Ctx, R.Formula);
          });
      if (!Overflowed.load(std::memory_order_relaxed))
        return Ctx.mkOr(std::move(Parts));
      // A combination wrapped int64: the FM result would be
      // unsound, so project the whole body with the qe tactic
      // below instead.
    }
    auto R = Qe.projectExists(E->body(), E->boundVars());
    if (R)
      return *R;
  }
  return E;
}

Region TransitionSystem::post(const Region &R, const Region *Chute) {
  ExprContext &Ctx = Prog.exprContext();
  Region Out = Region::bottom(Prog);

  // Two stages so the parallel part stays deterministic: building
  // the strongest-postcondition formulas draws fresh SSA variables
  // from the context and therefore runs sequentially in edge order
  // (the numbering must not depend on thread scheduling); the
  // projections are pure given those formulas and fan out across
  // the pool. The merge then reassembles results in edge order, so
  // the Region is bit-identical to the sequential one.
  struct EdgeWork {
    Loc Dst = 0;
    std::vector<ExprRef> Sps;
    std::vector<ExprRef> Projected;
  };
  std::vector<EdgeWork> Work;
  std::vector<std::pair<std::size_t, std::size_t>> Flat;
  for (const Edge &E : Prog.edges()) {
    ExprRef Pre = R.at(E.Src);
    if (Pre->isFalse())
      continue;
    EdgeWork W;
    W.Dst = E.Dst;
    // Distribute over disjuncts to keep the QE inputs conjunctive.
    for (ExprRef D : disjuncts(Pre))
      W.Sps.push_back(E.Cmd.post(Ctx, D, Prog.variables()));
    W.Projected.resize(W.Sps.size(), nullptr);
    for (std::size_t J = 0; J < W.Sps.size(); ++J)
      Flat.emplace_back(Work.size(), J);
    Work.push_back(std::move(W));
  }

  TaskPool::global().parallelFor(Flat.size(), [&](std::size_t K) {
    auto [I, J] = Flat[K];
    Work[I].Projected[J] = projectOrKeep(Work[I].Sps[J]);
  });

  for (EdgeWork &W : Work) {
    ExprRef PostF = Ctx.mkOr(std::move(W.Projected));
    if (Chute != nullptr)
      PostF = Ctx.mkAnd(PostF, Chute->at(W.Dst));
    Out.set(W.Dst, Ctx.mkOr(Out.at(W.Dst), PostF));
  }
  return Out.simplified(Ctx);
}

ExprRef TransitionSystem::postEdge(unsigned Id, ExprRef Pre) {
  ExprContext &Ctx = Prog.exprContext();
  const Edge &E = Prog.edge(Id);
  // Same staging as post(): sequential formula construction,
  // parallel projection, in-order merge.
  std::vector<ExprRef> Sps;
  for (ExprRef D : disjuncts(Pre))
    Sps.push_back(E.Cmd.post(Ctx, D, Prog.variables()));
  std::vector<ExprRef> Results(Sps.size(), nullptr);
  TaskPool::global().parallelFor(Sps.size(), [&](std::size_t I) {
    Results[I] = projectOrKeep(Sps[I]);
  });
  return simplify(Ctx, Ctx.mkOr(std::move(Results)));
}

Region TransitionSystem::preAll(const Region &R, const Region *Chute) const {
  ExprContext &Ctx = Prog.exprContext();
  Region Out = Region::top(Prog);
  for (const Edge &E : Prog.edges()) {
    ExprRef Target = R.at(E.Dst);
    if (Chute != nullptr)
      Target = Ctx.mkImplies(Chute->at(E.Dst), Target);
    ExprRef Wp = E.Cmd.wp(Ctx, Target);
    Out.set(E.Src, Ctx.mkAnd(Out.at(E.Src), Wp));
  }
  return Out.simplified(Ctx);
}

Region TransitionSystem::preExists(const Region &R,
                                   const Region *Chute) const {
  ExprContext &Ctx = Prog.exprContext();
  Region Out = Region::bottom(Prog);
  for (const Edge &E : Prog.edges()) {
    ExprRef Target = R.at(E.Dst);
    if (Chute != nullptr)
      Target = Ctx.mkAnd(Target, Chute->at(E.Dst));
    if (Target->isFalse())
      continue;
    ExprRef Pre = E.Cmd.preExists(Ctx, Target);
    Out.set(E.Src, Ctx.mkOr(Out.at(E.Src), Pre));
  }
  return Out.simplified(Ctx);
}

Region TransitionSystem::hasSuccessor(const Region *Chute) const {
  Region Top = Region::top(Prog);
  return preExists(Top, Chute);
}

Region TransitionSystem::eliminate(const Region &R) {
  Region Out = R;
  std::vector<ExprRef> Projected(Prog.numLocations(), nullptr);
  TaskPool::global().parallelFor(
      Prog.numLocations(),
      [&](std::size_t L) { Projected[L] = projectOrKeep(Out.at(L)); });
  for (Loc L = 0; L < Prog.numLocations(); ++L)
    Out.set(L, Projected[L]);
  return Out.simplified(Prog.exprContext());
}
