//===- ctl/Ctl.cpp - CTL formulas and subformula contexts -------------------===//

#include "ctl/Ctl.h"

using namespace chute;

bool chute::isEventuality(CtlKind K) {
  return K == CtlKind::AF || K == CtlKind::EF;
}

bool chute::isUnless(CtlKind K) {
  return K == CtlKind::AW || K == CtlKind::EW;
}

bool chute::isExistential(CtlKind K) {
  return K == CtlKind::EF || K == CtlKind::EW;
}

bool CtlFormula::isGlobally() const {
  return (K == CtlKind::AW || K == CtlKind::EW) && R != nullptr &&
         R->isAtom() && R->atom()->isFalse();
}

std::string CtlFormula::toString() const {
  switch (K) {
  case CtlKind::Atom:
    return Pred->isComparison() || Pred->isTrue() || Pred->isFalse()
               ? Pred->toString()
               : "(" + Pred->toString() + ")";
  case CtlKind::And:
    return "(" + L->toString() + " && " + R->toString() + ")";
  case CtlKind::Or:
    return "(" + L->toString() + " || " + R->toString() + ")";
  case CtlKind::AF:
    return "AF(" + L->toString() + ")";
  case CtlKind::EF:
    return "EF(" + L->toString() + ")";
  case CtlKind::AW:
    if (isGlobally())
      return "AG(" + L->toString() + ")";
    return "A[" + L->toString() + " W " + R->toString() + "]";
  case CtlKind::EW:
    if (isGlobally())
      return "EG(" + L->toString() + ")";
    return "E[" + L->toString() + " W " + R->toString() + "]";
  }
  return "?";
}

CtlRef CtlManager::intern(CtlKind K, ExprRef Pred, CtlRef L, CtlRef R) {
  for (const auto &N : Nodes)
    if (N->K == K && N->Pred == Pred && N->L == L && N->R == R)
      return N.get();
  Nodes.push_back(
      std::unique_ptr<CtlFormula>(new CtlFormula(K, Pred, L, R)));
  return Nodes.back().get();
}

CtlRef CtlManager::atom(ExprRef Pred) {
  assert(Pred->isBool() && "atoms are state predicates");
  return intern(CtlKind::Atom, Pred, nullptr, nullptr);
}

CtlRef CtlManager::conj(CtlRef A, CtlRef B) {
  return intern(CtlKind::And, nullptr, A, B);
}

CtlRef CtlManager::disj(CtlRef A, CtlRef B) {
  return intern(CtlKind::Or, nullptr, A, B);
}

CtlRef CtlManager::af(CtlRef F) {
  return intern(CtlKind::AF, nullptr, F, nullptr);
}

CtlRef CtlManager::ef(CtlRef F) {
  return intern(CtlKind::EF, nullptr, F, nullptr);
}

CtlRef CtlManager::aw(CtlRef F1, CtlRef F2) {
  return intern(CtlKind::AW, nullptr, F1, F2);
}

CtlRef CtlManager::ew(CtlRef F1, CtlRef F2) {
  return intern(CtlKind::EW, nullptr, F1, F2);
}

CtlRef CtlManager::ag(CtlRef F) { return aw(F, atom(Ctx.mkFalse())); }

CtlRef CtlManager::eg(CtlRef F) { return ew(F, atom(Ctx.mkFalse())); }

std::optional<CtlRef> CtlManager::negate(CtlRef F) {
  switch (F->kind()) {
  case CtlKind::Atom:
    return atom(Ctx.mkNot(F->atom()));
  case CtlKind::And: {
    auto A = negate(F->left());
    auto B = negate(F->right());
    if (!A || !B)
      return std::nullopt;
    return disj(*A, *B);
  }
  case CtlKind::Or: {
    auto A = negate(F->left());
    auto B = negate(F->right());
    if (!A || !B)
      return std::nullopt;
    return conj(*A, *B);
  }
  case CtlKind::AF: {
    auto A = negate(F->left());
    if (!A)
      return std::nullopt;
    return eg(*A); // !AF phi == EG !phi
  }
  case CtlKind::EF: {
    auto A = negate(F->left());
    if (!A)
      return std::nullopt;
    return ag(*A); // !EF phi == AG !phi
  }
  case CtlKind::AW:
    if (F->isGlobally()) {
      auto A = negate(F->left());
      if (!A)
        return std::nullopt;
      return ef(*A); // !AG phi == EF !phi
    }
    return std::nullopt; // Dual needs Until, outside the syntax.
  case CtlKind::EW:
    if (F->isGlobally()) {
      auto A = negate(F->left());
      if (!A)
        return std::nullopt;
      return af(*A); // !EG phi == AF !phi
    }
    return std::nullopt;
  }
  return std::nullopt;
}

std::string SubformulaPath::toString() const { return Steps + "o"; }

static void collectSubformulas(CtlRef F, const SubformulaPath &Path,
                               std::vector<Subformula> &Out) {
  Out.push_back({Path, F});
  switch (F->kind()) {
  case CtlKind::Atom:
    return;
  case CtlKind::AF:
  case CtlKind::EF:
    collectSubformulas(F->left(), Path.leftChild(), Out);
    return;
  case CtlKind::And:
  case CtlKind::Or:
  case CtlKind::AW:
  case CtlKind::EW:
    collectSubformulas(F->left(), Path.leftChild(), Out);
    collectSubformulas(F->right(), Path.rightChild(), Out);
    return;
  }
}

std::vector<Subformula> chute::subformulas(CtlRef F) {
  std::vector<Subformula> Out;
  collectSubformulas(F, SubformulaPath(), Out);
  return Out;
}
