//===- ctl/CtlParser.cpp - Textual CTL properties ----------------------------===//

#include "ctl/CtlParser.h"

#include "expr/ExprParser.h"

using namespace chute;

namespace {

class CtlParserImpl {
public:
  CtlParserImpl(CtlManager &M, const std::string &Text)
      : M(M), Lex(Text), Atoms(M.exprContext(), Lex) {}

  CtlRef run(std::string &Err) {
    CtlRef F = parseCtl(Err);
    if (F == nullptr)
      return nullptr;
    if (Lex.peek().K != Token::Eof) {
      fail(Err, "unexpected trailing input");
      return nullptr;
    }
    return F;
  }

private:
  void fail(std::string &Err, const std::string &Msg) {
    if (Err.empty())
      Err = "at " + Lex.describePos(Lex.peek().Pos) + ": " + Msg;
  }

  CtlRef parseCtl(std::string &Err) {
    CtlRef Lhs = parseOr(Err);
    if (Lhs == nullptr)
      return nullptr;
    if (Lex.peek().K != Token::Arrow)
      return Lhs;
    Lex.next();
    CtlRef Rhs = parseCtl(Err); // Right-associative.
    if (Rhs == nullptr)
      return nullptr;
    auto NotLhs = M.negate(Lhs);
    if (!NotLhs) {
      fail(Err, "cannot negate the left side of '->' within CTL "
                "(the dual would need Until)");
      return nullptr;
    }
    return M.disj(*NotLhs, Rhs);
  }

  CtlRef parseOr(std::string &Err) {
    CtlRef Lhs = parseAnd(Err);
    if (Lhs == nullptr)
      return nullptr;
    while (Lex.peek().K == Token::PipePipe) {
      Lex.next();
      CtlRef Rhs = parseAnd(Err);
      if (Rhs == nullptr)
        return nullptr;
      Lhs = M.disj(Lhs, Rhs);
    }
    return Lhs;
  }

  CtlRef parseAnd(std::string &Err) {
    CtlRef Lhs = parseUnary(Err);
    if (Lhs == nullptr)
      return nullptr;
    while (Lex.peek().K == Token::AmpAmp) {
      Lex.next();
      CtlRef Rhs = parseUnary(Err);
      if (Rhs == nullptr)
        return nullptr;
      Lhs = M.conj(Lhs, Rhs);
    }
    return Lhs;
  }

  CtlRef parseUnary(std::string &Err) {
    const Token &T = Lex.peek();

    if (T.K == Token::Bang) {
      Lex.next();
      CtlRef F = parseUnary(Err);
      if (F == nullptr)
        return nullptr;
      auto Neg = M.negate(F);
      if (!Neg) {
        fail(Err, "cannot negate this formula within CTL "
                  "(the dual would need Until)");
        return nullptr;
      }
      return *Neg;
    }

    if (T.K == Token::Ident) {
      // Copy: T references the lexer's mutable current token.
      std::string Kw = T.Text;
      if (Kw == "AF" || Kw == "EF" || Kw == "AG" || Kw == "EG") {
        Lex.next();
        CtlRef F = parseUnary(Err);
        if (F == nullptr)
          return nullptr;
        if (Kw == "AF")
          return M.af(F);
        if (Kw == "EF")
          return M.ef(F);
        if (Kw == "AG")
          return M.ag(F);
        return M.eg(F);
      }
      if (Kw == "A" || Kw == "E")
        return parseWeakUntil(Kw == "A", Err);
    }

    if (T.K == Token::LParen) {
      // Ambiguous: "(x+1) <= y" is an atom, "(AF p && q)" is CTL.
      Lexer::State Save = Lex.save();
      std::string TryErr;
      Lex.next();
      CtlRef Inner = parseCtl(TryErr);
      if (Inner != nullptr && Lex.peek().K == Token::RParen) {
        // Check the atom does not continue: "(x + 1) <= y" parses
        // its inside as term-ish and fails above, but "(x <= 1) &&"
        // style CTL succeeds here. If a comparison operator follows
        // the ')', the parenthesis belonged to an arithmetic atom.
        Lexer::State AfterParen = Lex.save();
        Lex.next();
        Token::Kind After = Lex.peek().K;
        bool LooksArithmetic =
            After == Token::Le || After == Token::Lt ||
            After == Token::Ge || After == Token::Gt ||
            After == Token::EqEq || After == Token::Ne ||
            After == Token::Assign || After == Token::Plus ||
            After == Token::Minus || After == Token::Star;
        if (!LooksArithmetic)
          return Inner;
        Lex.restore(AfterParen);
      }
      Lex.restore(Save);
      // Fall through: parse the whole thing as an atom.
    }

    auto Atom = Atoms.parseAtomFormula(Err);
    if (!Atom)
      return nullptr;
    return M.atom(*Atom);
  }

  CtlRef parseWeakUntil(bool Universal, std::string &Err) {
    Lex.next(); // 'A' or 'E'
    if (Lex.peek().K != Token::LBracket) {
      fail(Err, "expected '[' after path quantifier");
      return nullptr;
    }
    Lex.next();
    CtlRef F1 = parseCtl(Err);
    if (F1 == nullptr)
      return nullptr;
    if (!Lex.peekIs("W")) {
      fail(Err, "expected 'W' in weak-until");
      return nullptr;
    }
    Lex.next();
    CtlRef F2 = parseCtl(Err);
    if (F2 == nullptr)
      return nullptr;
    if (Lex.peek().K != Token::RBracket) {
      fail(Err, "expected ']'");
      return nullptr;
    }
    Lex.next();
    return Universal ? M.aw(F1, F2) : M.ew(F1, F2);
  }

  CtlManager &M;
  Lexer Lex;
  ExprParser Atoms;
};

} // namespace

CtlRef chute::parseCtlString(CtlManager &M, const std::string &Text,
                             std::string &Err) {
  CtlParserImpl P(M, Text);
  return P.run(Err);
}
