//===- ctl/Ctl.h - CTL formulas and subformula contexts -------*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CTL formulas in the paper's base syntax (Section 3.1):
///
///   F ::= p | F && F | F || F | AF F | EF F | A[F W F] | E[F W F]
///
/// with the sugar AG p = A[p W false] and EG p = E[p W false].
/// Formulas are kept in negation normal form: negation only occurs
/// inside atoms (the atom domain is closed under negation).
///
/// Subformulas are addressed by context paths pi = o | L.pi | R.pi as
/// in the paper, rendered "o", "Lo", "LRo", ... Chutes and frontiers
/// are indexed by these paths.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_CTL_CTL_H
#define CHUTE_CTL_CTL_H

#include "expr/Expr.h"

#include <functional>
#include <memory>
#include <optional>

namespace chute {

class CtlFormula;

/// Reference to an immutable, manager-owned CTL formula node.
using CtlRef = const CtlFormula *;

/// Kinds of CTL formula nodes.
enum class CtlKind : std::uint8_t {
  Atom, ///< a state predicate (boolean Expr)
  And,
  Or,
  AF, ///< on all paths, eventually
  EF, ///< on some path, eventually
  AW, ///< on all paths, left holds unless right takes over
  EW, ///< on some path, ...
};

/// True for AF/EF (the "F" temporal shape, proved by termination).
bool isEventuality(CtlKind K);
/// True for AW/EW (the "W" temporal shape, proved by invariance).
bool isUnless(CtlKind K);
/// True for EF/EW (existential path quantification).
bool isExistential(CtlKind K);

/// One immutable CTL formula node; create via CtlManager.
class CtlFormula {
public:
  CtlKind kind() const { return K; }

  /// The state predicate; only for Atom nodes.
  ExprRef atom() const {
    assert(K == CtlKind::Atom && "not an atom");
    return Pred;
  }

  /// Left (or only) subformula.
  CtlRef left() const {
    assert(K != CtlKind::Atom && "atoms have no subformulas");
    return L;
  }

  /// Right subformula; for AF/EF this is the implicit `false` of the
  /// underlying W-decomposition and is null.
  CtlRef right() const {
    assert((K == CtlKind::And || K == CtlKind::Or || K == CtlKind::AW ||
            K == CtlKind::EW) &&
           "node has no right subformula");
    return R;
  }

  bool isAtom() const { return K == CtlKind::Atom; }

  /// True if this node is AG/EG sugar: A[phi W false] / E[phi W false].
  bool isGlobally() const;

  /// Renders with AG/EG sugar, e.g. "AG(p == 1 -> AF(q == 1))".
  std::string toString() const;

private:
  friend class CtlManager;
  CtlFormula(CtlKind K, ExprRef Pred, CtlRef L, CtlRef R)
      : K(K), Pred(Pred), L(L), R(R) {}

  CtlKind K;
  ExprRef Pred = nullptr;
  CtlRef L = nullptr;
  CtlRef R = nullptr;
};

/// Owns CTL formula nodes (structural sharing, pointer equality).
class CtlManager {
public:
  explicit CtlManager(ExprContext &Ctx) : Ctx(Ctx) {}

  ExprContext &exprContext() { return Ctx; }

  CtlRef atom(ExprRef Pred);
  CtlRef conj(CtlRef A, CtlRef B);
  CtlRef disj(CtlRef A, CtlRef B);
  CtlRef af(CtlRef F);
  CtlRef ef(CtlRef F);
  CtlRef aw(CtlRef F1, CtlRef F2);
  CtlRef ew(CtlRef F1, CtlRef F2);
  /// AG F = A[F W false].
  CtlRef ag(CtlRef F);
  /// EG F = E[F W false].
  CtlRef eg(CtlRef F);

  /// The NNF negation (dual) of \p F. Defined for the full fragment
  /// the paper's benchmarks use: atoms, &&, ||, AF/EF and the
  /// G-shaped W forms. Returns nullopt for A[a W b] / E[a W b] with
  /// b != false (their duals need the Until operator, outside the
  /// paper's syntax).
  std::optional<CtlRef> negate(CtlRef F);

private:
  CtlRef intern(CtlKind K, ExprRef Pred, CtlRef L, CtlRef R);

  ExprContext &Ctx;
  std::vector<std::unique_ptr<CtlFormula>> Nodes;
};

/// A subformula context path: the L/R decisions from the root "o".
class SubformulaPath {
public:
  SubformulaPath() = default;

  SubformulaPath child(char Step) const {
    assert((Step == 'L' || Step == 'R') && "steps are L or R");
    SubformulaPath P = *this;
    P.Steps += Step;
    return P;
  }

  SubformulaPath leftChild() const { return child('L'); }
  SubformulaPath rightChild() const { return child('R'); }

  /// Paper rendering: steps-from-root prefixed to "o", innermost
  /// first (root is "o", its left child "Lo", that node's right
  /// child "RLo"... matching the paper's L.pi / R.pi construction
  /// where the path reads from the subformula up to the root).
  std::string toString() const;

  bool operator==(const SubformulaPath &O) const {
    return Steps == O.Steps;
  }

  /// Hash consistent with operator== (for hashed candidate sets).
  std::size_t hashValue() const {
    return std::hash<std::string>{}(Steps);
  }
  bool operator<(const SubformulaPath &O) const {
    return Steps < O.Steps;
  }

  /// True when this path addresses an ancestor-or-self of \p O.
  bool isPrefixOf(const SubformulaPath &O) const {
    return O.Steps.compare(0, Steps.size(), Steps) == 0;
  }

  std::size_t depth() const { return Steps.size(); }

private:
  std::string Steps; ///< decisions from the root, in order
};

/// A (path, formula) pair, as produced by sub(F) in the paper.
struct Subformula {
  SubformulaPath Path;
  CtlRef Formula = nullptr;
};

/// Computes sub(F): every subformula with its context path, root
/// first, in pre-order.
std::vector<Subformula> subformulas(CtlRef F);

} // namespace chute

#endif // CHUTE_CTL_CTL_H
