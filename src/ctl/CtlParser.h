//===- ctl/CtlParser.h - Textual CTL properties ---------------*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses CTL properties in the paper's notation:
///
///   ctl   := or ('->' ctl)?
///   or    := and ('||' and)*
///   and   := unary ('&&' unary)*
///   unary := 'AF' unary | 'EF' unary | 'AG' unary | 'EG' unary
///          | 'A' '[' ctl 'W' ctl ']' | 'E' '[' ctl 'W' ctl ']'
///          | '!' unary | '(' ctl ')' | atom
///
/// Atoms are linear comparisons over program variables. '!' and '->'
/// are desugared through the CTL dual, so the result is always in
/// negation normal form; properties whose desugaring would need the
/// Until operator are rejected, as in the paper's syntax.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_CTL_CTLPARSER_H
#define CHUTE_CTL_CTLPARSER_H

#include "ctl/Ctl.h"

namespace chute {

/// Parses \p Text as a CTL property. Returns nullptr and sets \p Err
/// on failure.
CtlRef parseCtlString(CtlManager &M, const std::string &Text,
                      std::string &Err);

} // namespace chute

#endif // CHUTE_CTL_CTLPARSER_H
