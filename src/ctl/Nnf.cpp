//===- ctl/Nnf.cpp - CTL formula utilities -----------------------------------===//

#include "ctl/Nnf.h"

#include <algorithm>
#include <map>

using namespace chute;

std::vector<ExprRef> chute::ctlAtomVariables(CtlRef F) {
  std::vector<ExprRef> Out;
  std::vector<CtlRef> Stack = {F};
  while (!Stack.empty()) {
    CtlRef Cur = Stack.back();
    Stack.pop_back();
    if (Cur->isAtom()) {
      for (ExprRef V : freeVars(Cur->atom()))
        if (std::find(Out.begin(), Out.end(), V) == Out.end())
          Out.push_back(V);
      continue;
    }
    Stack.push_back(Cur->left());
    if (Cur->kind() == CtlKind::And || Cur->kind() == CtlKind::Or ||
        isUnless(Cur->kind()))
      Stack.push_back(Cur->right());
  }
  return Out;
}

unsigned chute::ctlSize(CtlRef F) {
  if (F->isAtom())
    return 1;
  unsigned N = 1 + ctlSize(F->left());
  if (F->kind() == CtlKind::And || F->kind() == CtlKind::Or ||
      isUnless(F->kind()))
    N += ctlSize(F->right());
  return N;
}

unsigned chute::ctlTemporalDepth(CtlRef F) {
  switch (F->kind()) {
  case CtlKind::Atom:
    return 0;
  case CtlKind::And:
  case CtlKind::Or:
    return std::max(ctlTemporalDepth(F->left()),
                    ctlTemporalDepth(F->right()));
  case CtlKind::AF:
  case CtlKind::EF:
    return 1 + ctlTemporalDepth(F->left());
  case CtlKind::AW:
  case CtlKind::EW:
    return 1 + std::max(ctlTemporalDepth(F->left()),
                        ctlTemporalDepth(F->right()));
  }
  return 0;
}

bool chute::ctlHasExistential(CtlRef F) {
  if (F->isAtom())
    return false;
  if (isExistential(F->kind()))
    return true;
  if (ctlHasExistential(F->left()))
    return true;
  if (F->kind() == CtlKind::And || F->kind() == CtlKind::Or ||
      isUnless(F->kind()))
    return ctlHasExistential(F->right());
  return false;
}

namespace {

/// Letter assignment for atoms: structurally equal atoms share a
/// letter, and the negation of a seen atom renders as "!letter".
struct ShapeNamer {
  ExprContext *Ctx = nullptr;
  std::map<ExprRef, std::string> Names;
  char NextLetter = 'p';

  std::string name(ExprRef Atom, ExprContext &C) {
    auto It = Names.find(Atom);
    if (It != Names.end())
      return It->second;
    ExprRef Neg = C.mkNot(Atom);
    auto NegIt = Names.find(Neg);
    if (NegIt != Names.end()) {
      std::string N = "!" + NegIt->second;
      Names[Atom] = N;
      return N;
    }
    if (Atom->isTrue())
      return "true";
    if (Atom->isFalse())
      return "false";
    std::string N(1, NextLetter);
    if (NextLetter < 'z')
      ++NextLetter;
    Names[Atom] = N;
    return N;
  }
};

std::string shapeImpl(CtlRef F, ShapeNamer &Namer, ExprContext &Ctx) {
  switch (F->kind()) {
  case CtlKind::Atom:
    return Namer.name(F->atom(), Ctx);
  case CtlKind::And:
    return "(" + shapeImpl(F->left(), Namer, Ctx) + " && " +
           shapeImpl(F->right(), Namer, Ctx) + ")";
  case CtlKind::Or:
    // NNF turned implications into (!p || F); render them back in the
    // paper's "p -> F" style when the left side is an atom.
    if (F->left()->isAtom() && !F->left()->atom()->isTrue() &&
        !F->left()->atom()->isFalse())
      return "(" + Namer.name(Ctx.mkNot(F->left()->atom()), Ctx) +
             " -> " + shapeImpl(F->right(), Namer, Ctx) + ")";
    return "(" + shapeImpl(F->left(), Namer, Ctx) + " || " +
           shapeImpl(F->right(), Namer, Ctx) + ")";
  case CtlKind::AF:
    return "AF " + shapeImpl(F->left(), Namer, Ctx);
  case CtlKind::EF:
    return "EF " + shapeImpl(F->left(), Namer, Ctx);
  case CtlKind::AW:
    if (F->isGlobally())
      return "AG " + shapeImpl(F->left(), Namer, Ctx);
    return "A[" + shapeImpl(F->left(), Namer, Ctx) + " W " +
           shapeImpl(F->right(), Namer, Ctx) + "]";
  case CtlKind::EW:
    if (F->isGlobally())
      return "EG " + shapeImpl(F->left(), Namer, Ctx);
    return "E[" + shapeImpl(F->left(), Namer, Ctx) + " W " +
           shapeImpl(F->right(), Namer, Ctx) + "]";
  }
  return "?";
}

} // namespace

std::string chute::ctlShape(ExprContext &Ctx, CtlRef F) {
  ShapeNamer Namer;
  return shapeImpl(F, Namer, Ctx);
}
