//===- ctl/Nnf.h - CTL formula utilities ----------------------*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural utilities over (negation-normal-form) CTL formulas:
/// variable collection, size/depth measures, and the "property
/// shape" rendering the paper's result tables use (atoms abstracted
/// to p, q, r, ...).
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_CTL_NNF_H
#define CHUTE_CTL_NNF_H

#include "ctl/Ctl.h"

namespace chute {

/// All program variables mentioned in \p F's atoms (deduplicated, in
/// first-occurrence order).
std::vector<ExprRef> ctlAtomVariables(CtlRef F);

/// Number of formula nodes.
unsigned ctlSize(CtlRef F);

/// Maximal nesting depth of temporal operators.
unsigned ctlTemporalDepth(CtlRef F);

/// True if \p F contains an existential operator (EF/EW).
bool ctlHasExistential(CtlRef F);

/// Renders the shape of \p F with atoms abstracted to letters, e.g.
/// EF(EG p) for EF(EG(x > 0)). Negated atoms of an already-seen atom
/// reuse its letter with a '!' prefix. \p Ctx must be the context the
/// atoms were built in.
std::string ctlShape(ExprContext &Ctx, CtlRef F);

} // namespace chute

#endif // CHUTE_CTL_NNF_H
