//===- smt/SmtSession.h - Persistent incremental SMT session --*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-lived incremental solver session, one per worker thread of
/// an Smt facade. The refinement loop of Figure 4 re-discharges
/// nearly identical obligations every round: the SSA path formula and
/// the restricted transition relation change only by the newly
/// synthesised chute conjunct. A fresh solver per query (Z3Solver)
/// forces Z3 to re-learn the same lemmas each time; the session keeps
/// the solver warm instead.
///
/// Mechanism — assumption literals over a scoped frame:
///
///  - Each top-level conjunct `c` of a query is registered once with
///    a fresh Boolean assumption literal `a`: the session asserts
///    `a => c` permanently inside its work frame. A query for the
///    conjunction {c1..cn} is then `check_assumptions({a1..an})`:
///    conjuncts shared between queries (path formulas, transition
///    relations) stay asserted across checks, so learned lemmas
///    survive, while per-round chute conjuncts toggle by merely
///    picking a different assumption set. Guarded assertions whose
///    literal is not assumed are vacuously satisfiable, so the
///    verdict is exactly sat(c1 && .. && cn).
///
///  - On Unsat, Z3 reports the subset of assumption literals actually
///    used — an unsat core over the conjuncts. Cores are fed back
///    into the QueryCache: a later query whose conjunct set includes
///    a known-unsat core is unsatisfiable by monotonicity and never
///    reaches a solver, which prunes re-discharged obligations whose
///    cores do not mention the refined predicate.
///
///  - All guarded assertions live in one push()ed frame. When the
///    registered-literal count exceeds the cap (or Z3 reports an
///    error, after which the solver state is suspect), the session
///    pops the frame and starts a fresh one — bounded memory, and a
///    poisoned solver never survives an error.
///
/// The session is single-thread-owned (Z3 contexts are not
/// thread-safe); the Smt facade keeps one per worker thread next to
/// the thread's Z3Context. Unknown answers fall back to the facade's
/// classic fresh-solver retry schedule, so incremental mode can only
/// add verdicts, never lose them. `CHUTE_INCREMENTAL=0` (resolved
/// through core/Options.h) disables the layer entirely.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_SMT_SMTSESSION_H
#define CHUTE_SMT_SMTSESSION_H

#include "expr/Expr.h"
#include "smt/Model.h"
#include "smt/Z3Context.h"
#include "smt/Z3Solver.h"

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace chute {

/// Monotone counters of one session (or an aggregate over the
/// facade's per-thread sessions). Written only by the owning thread;
/// aggregated after parallel sections have joined.
struct SmtSessionStats {
  std::uint64_t Checks = 0;       ///< incremental checks issued
  std::uint64_t LitsRegistered = 0; ///< distinct conjuncts guarded
  std::uint64_t LitsReused = 0;   ///< assumption literals reused
  std::uint64_t UnsatCores = 0;   ///< Unsat answers with a core
  std::uint64_t CoreLits = 0;     ///< total conjuncts across cores
  std::uint64_t Resets = 0;       ///< frames torn down (all causes)
  std::uint64_t ErrorResets = 0;  ///< resets forced by a Z3 error
  std::uint64_t FramesPushed = 0; ///< work frames opened
  std::uint64_t FramesPopped = 0; ///< work frames closed

  SmtSessionStats &operator+=(const SmtSessionStats &O) {
    Checks += O.Checks;
    LitsRegistered += O.LitsRegistered;
    LitsReused += O.LitsReused;
    UnsatCores += O.UnsatCores;
    CoreLits += O.CoreLits;
    Resets += O.Resets;
    ErrorResets += O.ErrorResets;
    FramesPushed += O.FramesPushed;
    FramesPopped += O.FramesPopped;
    return *this;
  }
};

/// Persistent incremental solver over one Z3Context. Not copyable;
/// single-thread-owned (the owning thread of the context).
class SmtSession {
public:
  /// \p MaxLits bounds the guarded conjuncts held in the work frame;
  /// exceeding it tears the frame down and starts fresh.
  explicit SmtSession(Z3Context &Zc, std::size_t MaxLits = 4096);
  ~SmtSession();

  SmtSession(const SmtSession &) = delete;
  SmtSession &operator=(const SmtSession &) = delete;

  /// Checks satisfiability of the conjunction of \p Conjuncts under
  /// the session's accumulated state. \p TimeoutMs bounds this check
  /// (0 = none); \p Seed re-seeds the randomized heuristics. On
  /// Unsat, \p CoreOut (when non-null) receives the subset of
  /// \p Conjuncts in the solver's unsat core (may be empty when the
  /// core is unavailable). Z3 errors reset the session and answer
  /// Unknown.
  SatResult check(const std::vector<ExprRef> &Conjuncts,
                  unsigned TimeoutMs, unsigned Seed,
                  std::vector<ExprRef> *CoreOut = nullptr);

  /// After a Sat answer, extracts values for \p Vars (Var exprs).
  std::optional<Model> getModel(const std::vector<ExprRef> &Vars);

  /// Tears down the work frame: pops it, forgets every registered
  /// literal, and opens a fresh frame on the same solver.
  void reset();

  /// Guarded conjuncts currently registered.
  std::size_t numLiterals() const { return Lits.size(); }

  const SmtSessionStats &stats() const { return St; }

private:
  /// Creates the solver and opens the work frame on first use.
  void ensureSolver();

  /// The assumption literal guarding \p Conjunct, registering it (and
  /// asserting the guarded implication) on first sight. Null when
  /// translation failed.
  Z3_ast literalFor(ExprRef Conjunct);

  Z3Context &Zc;
  std::size_t MaxLits;
  Z3_solver Solver = nullptr;
  /// Conjunct -> its assumption literal, and the reverse map used to
  /// translate unsat cores back. Expressions are hash-consed, so the
  /// pointer is the identity.
  std::unordered_map<ExprRef, Z3_ast> Lits;
  std::unordered_map<Z3_ast, ExprRef> Back;
  /// Monotone across resets so literal names never collide.
  unsigned NextLitId = 0;
  SmtSessionStats St;
};

} // namespace chute

#endif // CHUTE_SMT_SMTSESSION_H
