//===- smt/DiskCache.cpp - Disk-backed cross-run query cache ---------------===//

#include "smt/DiskCache.h"

#include "expr/Expr.h"
#include "obs/Trace.h"
#include "smt/CacheFormat.h"
#include "smt/CacheStore.h"

#include <sstream>

using namespace chute;

DiskCache::DiskCache(std::string Dir)
    : Directory(std::move(Dir)), Store(CacheStore::open(Directory)) {}

DiskCache::~DiskCache() = default;

std::string DiskCache::programKey(const std::string &ProgramText) {
  std::ostringstream Os;
  Os << std::hex << cachefmt::fnv1a(ProgramText);
  return Os.str();
}

std::string DiskCache::filePath(const std::string &Dir,
                                const std::string &ProgramKey) {
  return Dir + "/qc-" + ProgramKey + ".chute";
}

std::string DiskCache::serialize(const CacheSnapshot &S) {
  return "CHUTE-QC 1 " + cachefmt::z3VersionString() + "\n" +
         cachefmt::serializeBody(S);
}

bool DiskCache::deserialize(const std::string &Text, ExprContext &Ctx,
                            CacheSnapshot &Out) {
  std::size_t Nl = Text.find('\n');
  if (Nl == std::string::npos)
    return false;
  std::istringstream Ts(Text.substr(0, Nl));
  std::string Magic, Version, Rest;
  unsigned Schema = 0;
  if (!(Ts >> Magic >> Schema >> Version) || (Ts >> Rest) ||
      Magic != "CHUTE-QC" || Schema != 1 ||
      Version != cachefmt::z3VersionString())
    return false;
  return cachefmt::parseBody(Text.substr(Nl + 1), Ctx, Out);
}

bool DiskCache::load(const std::string & /*ProgramKey*/, ExprContext &Ctx,
                     QueryCache &Cache) {
  CacheStore::WarmResult R = Store->warmStart(Ctx, Cache);
  std::lock_guard<std::mutex> Lock(Mu);
  if (R.total() == 0)
    return false; // nothing usable: a cold start
  ++St.FilesLoaded;
  St.SatLoaded += R.Sat;
  St.QeLoaded += R.Qe;
  St.CoresLoaded += R.Cores;
  obs::bump(obs::Counter::SmtDiskLoaded, R.total());
  return true;
}

bool DiskCache::save(const std::string & /*ProgramKey*/, QueryCache &Cache) {
  CacheSnapshot S = Cache.exportAll();
  if (S.empty())
    return false; // nothing durable: leave the store alone
  CacheStore::AppendResult R = Store->append(S);
  if (!R.Ok)
    return false;
  std::lock_guard<std::mutex> Lock(Mu);
  ++St.FilesSaved;
  St.SatSaved += R.Sat;
  St.QeSaved += R.Qe;
  St.CoresSaved += R.Cores;
  return true;
}

DiskCacheStats DiskCache::stats() const {
  DiskCacheStats Out;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Out = St;
  }
  CacheStoreStats CS = Store->stats();
  // Rejection anywhere in the store — a damaged slab, a corrupt
  // record, an unparseable legacy file — surfaces as a load reject:
  // all of them mean durable bytes existed that could not become
  // verdicts.
  Out.LoadRejects = CS.SlabsRejected + CS.CorruptRecordsSkipped +
                    CS.LegacyInvalidated;
  Out.RecordsAppended = CS.RecordsAppended;
  Out.RecordsIndexed = CS.RecordsIndexed;
  Out.DuplicatesSkipped = CS.DuplicatesSkipped;
  Out.TornTailsTruncated = CS.TornTailsTruncated;
  Out.Compactions = CS.Compactions;
  Out.CompactedBytes = CS.CompactedBytes;
  Out.LegacyImported = CS.LegacyImported;
  Out.LegacyInvalidated = CS.LegacyInvalidated;
  Out.LockFailures = CS.LockFailures;
  return Out;
}
