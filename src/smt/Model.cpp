//===- smt/Model.cpp - Satisfying assignments ------------------------------===//

#include "smt/Model.h"

#include "support/StringExtras.h"

#include <algorithm>

using namespace chute;

std::int64_t Model::eval(ExprRef E) const {
  // Complete the assignment for any free variable missing from the
  // model (Z3 omits don't-care variables).
  std::unordered_map<std::string, std::int64_t> Env = Values;
  for (ExprRef V : freeVars(E))
    Env.emplace(V->varName(), 0);
  return evaluate(E, Env);
}

std::string Model::toString() const {
  std::vector<std::string> Parts;
  Parts.reserve(Values.size());
  std::vector<std::pair<std::string, std::int64_t>> Sorted(Values.begin(),
                                                           Values.end());
  std::sort(Sorted.begin(), Sorted.end());
  for (const auto &[Name, V] : Sorted)
    Parts.push_back(Name + "=" + std::to_string(V));
  return join(Parts, ", ");
}
