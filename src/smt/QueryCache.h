//===- smt/QueryCache.h - Content-addressed SMT result cache --*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An LRU-bounded, content-addressed cache of SMT verdicts and
/// quantifier-elimination outputs, shared by all worker threads of
/// one Smt facade.
///
/// Keys are the structural hash every ExprNode caches at construction
/// (ExprNode::hash()), so a lookup costs one hash-map probe with no
/// re-traversal of the formula. Hash collisions are survivable, not
/// assumed away: each entry also stores the exact ExprRef it was
/// inserted under, and because expressions are hash-consed (pointer
/// equality is structural equality within a context), a lookup only
/// hits when the pointer matches. Two different formulas that happen
/// to share a hash simply occupy two entries in the same bucket.
///
/// Only information that is stable across solver runs is memoized:
/// definite Sat/Unsat verdicts and successful QE outputs. Unknown
/// answers (timeouts, injected faults) and failed eliminations are
/// never cached — retrying them later with a bigger timeout must
/// reach the solver. Models are not cached either; a Sat hit on a
/// model-requesting query falls through to the solver.
///
/// The cache is keyed purely on expression identity, so it must not
/// be shared across ExprContexts (distinct programs): Smt owns one
/// cache per facade, and Verifier owns one facade per program, which
/// gives that invalidation for free. clear() exists for callers that
/// re-seat a facade.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_SMT_QUERYCACHE_H
#define CHUTE_SMT_QUERYCACHE_H

#include "expr/Expr.h"
#include "smt/Z3Solver.h"

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace chute {

/// Hit/miss/evict counters for one cache (monotone; read via
/// QueryCache::stats()).
struct QueryCacheStats {
  std::uint64_t Hits = 0;
  std::uint64_t Misses = 0;
  std::uint64_t Evictions = 0;
  std::uint64_t Insertions = 0;
  std::uint64_t CoreInserts = 0; ///< unsat cores recorded
  std::uint64_t CoreHits = 0;    ///< queries subsumed by a core
  std::uint64_t Retired = 0;     ///< entries dropped by epoch retire
  std::uint64_t WarmLoaded = 0;  ///< entries imported from disk
  std::uint64_t WarmHits = 0;    ///< hits answered by imported entries

  double hitRate() const {
    std::uint64_t Lookups = Hits + Misses;
    return Lookups == 0 ? 0.0
                        : static_cast<double>(Hits) /
                              static_cast<double>(Lookups);
  }

  QueryCacheStats &operator+=(const QueryCacheStats &O) {
    Hits += O.Hits;
    Misses += O.Misses;
    Evictions += O.Evictions;
    Insertions += O.Insertions;
    CoreInserts += O.CoreInserts;
    CoreHits += O.CoreHits;
    Retired += O.Retired;
    WarmLoaded += O.WarmLoaded;
    WarmHits += O.WarmHits;
    return *this;
  }
};

/// A context-free image of a cache's durable contents, used by the
/// disk cache to move verdicts between runs. Sat records carry only
/// definite verdicts (Unknown is never exported), QE records only
/// successful eliminations, cores only unretired ones.
struct CacheSnapshot {
  struct SatRecord {
    ExprRef E = nullptr;
    SatResult R = SatResult::Unknown;
  };
  struct QeRecord {
    ExprRef In = nullptr;
    ExprRef Out = nullptr;
  };
  std::vector<SatRecord> Sat;
  std::vector<QeRecord> Qe;
  std::vector<std::vector<ExprRef>> Cores;

  bool empty() const { return Sat.empty() && Qe.empty() && Cores.empty(); }
};

/// Thread-safe LRU cache of SMT verdicts and QE results.
class QueryCache {
public:
  /// \p Capacity bounds the number of live entries (Sat and QE
  /// entries share the bound); 0 disables caching entirely.
  explicit QueryCache(std::size_t Capacity = 8192);

  std::size_t capacity() const { return Cap; }
  std::size_t size() const;

  /// Cached satisfiability verdict of \p E, if any. Counts a hit or
  /// a miss. Entries whose session epoch was retired are treated as
  /// misses (and dropped).
  std::optional<SatResult> lookupSat(ExprRef E);

  /// Records a definite verdict for \p E. Unknown is ignored — a
  /// timed-out or budget-starved query must reach the solver again
  /// under a fresher budget, so transient verdicts are never
  /// replayed. \p Epoch tags the entry's provenance: 0 means a
  /// one-shot solver (always valid); nonzero is the incremental
  /// session generation that produced it, and retireIncrementalBefore
  /// can invalidate whole generations so incremental and one-shot
  /// verdicts can never alias after a suspect session.
  void storeSat(ExprRef E, SatResult R, std::uint32_t Epoch = 0);

  /// Cached QE output for input \p E, if any. Counts a hit or a miss.
  std::optional<ExprRef> lookupQe(ExprRef E);

  /// Records a successful elimination \p E -> \p Out.
  void storeQe(ExprRef E, ExprRef Out);

  //===-- Unsat-core index -------------------------------------------===//
  // Satisfiability is antitone in conjunction strength: once a set of
  // conjuncts K is known jointly unsatisfiable, every query whose
  // top-level conjunct set includes K is Unsat without a solver. The
  // incremental sessions feed their unsat cores here, which prunes
  // the re-discharged obligations of successive refinement rounds
  // whose cores never mentioned the refined predicate.

  /// Records \p Core (a set of conjuncts proven jointly Unsat) under
  /// session epoch \p Epoch. Oversized or duplicate cores are
  /// ignored.
  void storeUnsatCore(std::vector<ExprRef> Core, std::uint32_t Epoch);

  /// True when a recorded core is a subset of \p Conjuncts (the query
  /// is then Unsat by monotonicity). Counts a core hit on success.
  bool subsumedUnsat(const std::vector<ExprRef> &Conjuncts);

  /// Invalidates every entry (verdicts, QE outputs, cores) whose
  /// incremental epoch is nonzero and below \p MinValid. One-shot
  /// entries (epoch 0) are never retired.
  void retireIncrementalBefore(std::uint32_t MinValid);

  //===-- Warm start (disk cache) ------------------------------------===//
  // The disk-backed cache (smt/DiskCache.h) round-trips a cache
  // through these. Imported entries are tagged warm; a hit on one
  // additionally counts WarmHits (and the SmtDiskWarmHits trace
  // counter), which is how the bench harness proves a warm run
  // actually consumed the previous run's work.

  /// Every durable entry: definite Sat verdicts, QE outputs, and
  /// unretired cores. Retired-epoch entries are skipped.
  CacheSnapshot exportAll() const;

  /// Inserts \p S's records as warm entries under epoch 0 (a
  /// serialized verdict is definite, so it is valid independent of
  /// any incremental session generation). Existing entries for the
  /// same formula are left in place.
  void importWarm(const CacheSnapshot &S);

  /// Drops every entry (stats are kept).
  void clear();

  QueryCacheStats stats() const;

  //===-- Testing hooks ----------------------------------------------===//
  // The hash is normally taken from E->hash(); these variants accept
  // it explicitly so tests can force two distinct formulas into the
  // same bucket and check that collision never aliases results.
  std::optional<SatResult> lookupSatWithHash(std::size_t H, ExprRef E);
  void storeSatWithHash(std::size_t H, ExprRef E, SatResult R,
                        std::uint32_t Epoch = 0);

private:
  enum class EntryKind : std::uint8_t { Sat, Qe };

  struct Entry {
    std::size_t Hash = 0;
    EntryKind Kind = EntryKind::Sat;
    ExprRef Key = nullptr;    ///< exact formula this entry answers
    SatResult Verdict = SatResult::Unknown;
    ExprRef QeOut = nullptr;
    /// 0 = one-shot (always valid); else the incremental session
    /// generation the verdict came from.
    std::uint32_t Epoch = 0;
    /// Imported from the disk cache (hits count WarmHits).
    bool Warm = false;
  };

  /// One recorded unsat core: conjuncts sorted by pointer identity so
  /// subset probes are a single std::includes sweep.
  struct CoreEntry {
    std::vector<ExprRef> Conjuncts;
    std::uint32_t Epoch = 0;
    bool Warm = false;
  };

  using LruList = std::list<Entry>;
  using CoreList = std::list<CoreEntry>;

  /// Finds the live entry for (H, Kind, Key), refreshing its LRU
  /// position; drops it instead when its epoch was retired. Returns
  /// nullptr on miss. Caller holds Mu.
  Entry *find(std::size_t H, EntryKind K, ExprRef Key);

  /// Inserts or overwrites (H, Kind, Key). Caller holds Mu.
  void insert(std::size_t H, EntryKind K, ExprRef Key, SatResult R,
              ExprRef QeOut, std::uint32_t Epoch, bool Warm = false);

  /// storeUnsatCore with the warm flag. Caller does NOT hold Mu.
  void storeCoreImpl(std::vector<ExprRef> Core, std::uint32_t Epoch,
                     bool Warm);

  /// Evicts the least-recently-used entry. Caller holds Mu.
  void evictOne();

  /// Removes \p It from its bucket and the LRU list. Caller holds Mu.
  void erase(LruList::iterator It);

  std::size_t Cap;
  mutable std::mutex Mu;
  /// Most-recently-used first.
  LruList Lru;
  /// Structural hash -> entries sharing it (collision bucket).
  std::unordered_map<std::size_t, std::vector<LruList::iterator>> Buckets;
  /// Recorded unsat cores, most-recently-hit first, bounded.
  CoreList Cores;
  /// Cores are few and small; probing is a linear sweep of subset
  /// checks, so keep the bound tight.
  static constexpr std::size_t CoreCap = 256;
  static constexpr std::size_t MaxCoreSize = 32;
  /// Incremental entries with Epoch < MinIncEpoch are invalid.
  std::uint32_t MinIncEpoch = 0;
  QueryCacheStats St;
};

} // namespace chute

#endif // CHUTE_SMT_QUERYCACHE_H
