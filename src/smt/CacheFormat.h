//===- smt/CacheFormat.h - Shared cache serialisation grammar -*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one text grammar both durable cache layers speak: the legacy
/// per-program files (smt/DiskCache, now only read for migration)
/// and the sharded slab store (smt/CacheStore) serialise snapshots
/// through these helpers, so a record written by either is parseable
/// by the strict body parser of the other.
///
/// A body is:
///
///   E <nodes> S <sat> Q <qe> C <cores>     (counts line)
///   <node definition lines>                (children before parents)
///   <record lines>                         (S/Q/C over node ids)
///
/// Node definitions assign dense ids in deterministic DFS order, so
/// the serialisation of an expression is a pure function of its
/// structure — independent of the ExprContext that interned it and
/// of pointer values. That is what makes fnv1a(exprText(E)) a
/// stable, cross-process, cross-program structural key: the slab
/// store shards and dedupes on it.
///
/// Parsing is strict everywhere: any malformed line, dangling node
/// reference, unknown token or trailing garbage fails the whole
/// body. "unknown" is not a token of the grammar — transient
/// verdicts are unrepresentable, not merely filtered.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_SMT_CACHEFORMAT_H
#define CHUTE_SMT_CACHEFORMAT_H

#include "smt/QueryCache.h"

#include <cstdint>
#include <string>

namespace chute {

class ExprContext;

namespace cachefmt {

/// FNV-1a, 64-bit — the hash both the record framing checksum and
/// the structural sharding key use.
std::uint64_t fnv1a(const std::string &S);

/// "major.minor.build.rev" of the linked Z3. Baked into every header
/// so a solver upgrade invalidates persisted verdicts wholesale.
std::string z3VersionString();

/// Canonical serialisation of one expression: its node-definition
/// lines in DFS order (the expression itself is the last id).
/// Returns the empty string when \p E cannot be serialised (a
/// variable whose name would not survive the line format).
std::string exprText(ExprRef E);

/// Serialises a snapshot body (counts line + nodes + records).
/// Unknown verdicts, null expressions and unserialisable names are
/// structurally absent from the output.
std::string serializeBody(const CacheSnapshot &S);

/// Parses a body into \p Out, rebuilding expressions in \p Ctx
/// through its normalising constructors. Strict: returns false on
/// any malformation, including trailing garbage.
bool parseBody(const std::string &Text, ExprContext &Ctx,
               CacheSnapshot &Out);

} // namespace cachefmt
} // namespace chute

#endif // CHUTE_SMT_CACHEFORMAT_H
