//===- smt/Model.h - Satisfying assignments -------------------*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A model is an assignment of integer values to named variables,
/// extracted from a Z3 model for the variables the caller asked about.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_SMT_MODEL_H
#define CHUTE_SMT_MODEL_H

#include "expr/Expr.h"

#include <unordered_map>

namespace chute {

/// Integer assignment to variables, by name.
class Model {
public:
  /// Sets the value of variable \p Name.
  void set(const std::string &Name, std::int64_t V) { Values[Name] = V; }

  /// True if the model assigns \p Name.
  bool has(const std::string &Name) const { return Values.count(Name) != 0; }

  /// The value of \p Name; variables Z3 left unconstrained default
  /// to 0 (any value satisfies, so 0 is a valid completion).
  std::int64_t get(const std::string &Name) const {
    auto It = Values.find(Name);
    return It == Values.end() ? 0 : It->second;
  }

  /// Evaluates a quantifier-free expression under this model, with
  /// unassigned variables defaulting to 0.
  std::int64_t eval(ExprRef E) const;

  const std::unordered_map<std::string, std::int64_t> &values() const {
    return Values;
  }

  /// Renders as "x=1, y=2" sorted by name.
  std::string toString() const;

private:
  std::unordered_map<std::string, std::int64_t> Values;
};

} // namespace chute

#endif // CHUTE_SMT_MODEL_H
