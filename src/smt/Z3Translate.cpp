//===- smt/Z3Translate.cpp - Expr <-> Z3 AST conversion --------------------===//

#include "smt/Z3Translate.h"

#include <vector>

using namespace chute;

//===-- Forward direction ---------------------------------------------------===//

Z3_ast chute::toZ3(Z3Context &Z3, ExprRef E) {
  Z3_context C = Z3.raw();
  Z3_sort IntSort = Z3_mk_int_sort(C);

  switch (E->kind()) {
  case ExprKind::IntConst:
    return Z3_mk_int64(C, E->intValue(), IntSort);
  case ExprKind::Var: {
    Z3_symbol Sym = Z3_mk_string_symbol(C, E->varName().c_str());
    return Z3_mk_const(C, Sym, IntSort);
  }
  case ExprKind::Add: {
    std::vector<Z3_ast> Ops;
    Ops.reserve(E->numOperands());
    for (ExprRef Op : E->operands())
      Ops.push_back(toZ3(Z3, Op));
    return Z3_mk_add(C, static_cast<unsigned>(Ops.size()), Ops.data());
  }
  case ExprKind::Mul: {
    Z3_ast Ops[2] = {toZ3(Z3, E->operand(0)), toZ3(Z3, E->operand(1))};
    return Z3_mk_mul(C, 2, Ops);
  }
  case ExprKind::Eq:
    return Z3_mk_eq(C, toZ3(Z3, E->operand(0)), toZ3(Z3, E->operand(1)));
  case ExprKind::Ne: {
    Z3_ast Eq =
        Z3_mk_eq(C, toZ3(Z3, E->operand(0)), toZ3(Z3, E->operand(1)));
    return Z3_mk_not(C, Eq);
  }
  case ExprKind::Le:
    return Z3_mk_le(C, toZ3(Z3, E->operand(0)), toZ3(Z3, E->operand(1)));
  case ExprKind::Lt:
    return Z3_mk_lt(C, toZ3(Z3, E->operand(0)), toZ3(Z3, E->operand(1)));
  case ExprKind::Ge:
    return Z3_mk_ge(C, toZ3(Z3, E->operand(0)), toZ3(Z3, E->operand(1)));
  case ExprKind::Gt:
    return Z3_mk_gt(C, toZ3(Z3, E->operand(0)), toZ3(Z3, E->operand(1)));
  case ExprKind::True:
    return Z3_mk_true(C);
  case ExprKind::False:
    return Z3_mk_false(C);
  case ExprKind::And: {
    std::vector<Z3_ast> Ops;
    Ops.reserve(E->numOperands());
    for (ExprRef Op : E->operands())
      Ops.push_back(toZ3(Z3, Op));
    return Z3_mk_and(C, static_cast<unsigned>(Ops.size()), Ops.data());
  }
  case ExprKind::Or: {
    std::vector<Z3_ast> Ops;
    Ops.reserve(E->numOperands());
    for (ExprRef Op : E->operands())
      Ops.push_back(toZ3(Z3, Op));
    return Z3_mk_or(C, static_cast<unsigned>(Ops.size()), Ops.data());
  }
  case ExprKind::Not:
    return Z3_mk_not(C, toZ3(Z3, E->operand(0)));
  case ExprKind::Implies:
    return Z3_mk_implies(C, toZ3(Z3, E->operand(0)),
                         toZ3(Z3, E->operand(1)));
  case ExprKind::Exists:
  case ExprKind::Forall: {
    std::vector<Z3_app> Bound;
    Bound.reserve(E->boundVars().size());
    for (ExprRef B : E->boundVars())
      Bound.push_back(Z3_to_app(C, toZ3(Z3, B)));
    Z3_ast Body = toZ3(Z3, E->body());
    if (E->kind() == ExprKind::Exists)
      return Z3_mk_exists_const(C, 0, static_cast<unsigned>(Bound.size()),
                                Bound.data(), 0, nullptr, Body);
    return Z3_mk_forall_const(C, 0, static_cast<unsigned>(Bound.size()),
                              Bound.data(), 0, nullptr, Body);
  }
  }
  assert(false && "unknown expression kind");
  return Z3_mk_false(Z3.raw());
}

//===-- Backward direction --------------------------------------------------===//

namespace {

std::optional<ExprRef> fromZ3App(Z3Context &Z3, ExprContext &Ctx,
                                 Z3_app App);

std::optional<ExprRef> fromZ3Impl(Z3Context &Z3, ExprContext &Ctx,
                                  Z3_ast A) {
  Z3_context C = Z3.raw();
  switch (Z3_get_ast_kind(C, A)) {
  case Z3_NUMERAL_AST: {
    std::int64_t V = 0;
    if (!Z3_get_numeral_int64(C, A, &V))
      return std::nullopt; // Out of 64-bit range.
    return Ctx.mkInt(V);
  }
  case Z3_APP_AST:
    return fromZ3App(Z3, Ctx, Z3_to_app(C, A));
  case Z3_QUANTIFIER_AST: {
    // Z3 quantifiers use de Bruijn indices; rebuild named bound vars.
    unsigned N = Z3_get_quantifier_num_bound(C, A);
    std::vector<ExprRef> Bound(N, nullptr);
    for (unsigned I = 0; I < N; ++I) {
      Z3_symbol Sym = Z3_get_quantifier_bound_name(C, A, I);
      std::string Name;
      if (Z3_get_symbol_kind(C, Sym) == Z3_STRING_SYMBOL)
        Name = Z3_get_symbol_string(C, Sym);
      else
        Name = "qv!" + std::to_string(Z3_get_symbol_int(C, Sym));
      Bound[I] = Ctx.mkVar(Name);
    }
    // Substitute bound de Bruijn variables by the named constants and
    // recurse on the body.
    Z3_ast Body = Z3_get_quantifier_body(C, A);
    std::vector<Z3_ast> Consts(N);
    for (unsigned I = 0; I < N; ++I) {
      Z3_symbol Sym =
          Z3_mk_string_symbol(C, Bound[I]->varName().c_str());
      Consts[I] = Z3_mk_const(C, Sym, Z3_mk_int_sort(C));
    }
    // De Bruijn index 0 refers to the innermost (last) bound variable.
    std::vector<Z3_ast> FromVars(N);
    for (unsigned I = 0; I < N; ++I)
      FromVars[I] =
          Z3_mk_bound(C, N - 1 - I, Z3_mk_int_sort(C));
    Z3_ast Subst =
        Z3_substitute(C, Body, N, FromVars.data(), Consts.data());
    auto BodyExpr = fromZ3Impl(Z3, Ctx, Subst);
    if (!BodyExpr)
      return std::nullopt;
    if (Z3_is_quantifier_forall(C, A))
      return Ctx.mkForall(std::move(Bound), *BodyExpr);
    return Ctx.mkExists(std::move(Bound), *BodyExpr);
  }
  default:
    return std::nullopt;
  }
}

std::optional<ExprRef> fromZ3App(Z3Context &Z3, ExprContext &Ctx,
                                 Z3_app App) {
  Z3_context C = Z3.raw();
  Z3_func_decl Decl = Z3_get_app_decl(C, App);
  Z3_decl_kind Kind = Z3_get_decl_kind(C, Decl);
  unsigned N = Z3_get_app_num_args(C, App);

  auto arg = [&](unsigned I) -> std::optional<ExprRef> {
    return fromZ3Impl(Z3, Ctx, Z3_get_app_arg(C, App, I));
  };
  auto allArgs = [&]() -> std::optional<std::vector<ExprRef>> {
    std::vector<ExprRef> Out;
    Out.reserve(N);
    for (unsigned I = 0; I < N; ++I) {
      auto E = arg(I);
      if (!E)
        return std::nullopt;
      Out.push_back(*E);
    }
    return Out;
  };

  switch (Kind) {
  case Z3_OP_TRUE:
    return Ctx.mkTrue();
  case Z3_OP_FALSE:
    return Ctx.mkFalse();
  case Z3_OP_AND: {
    auto Args = allArgs();
    if (!Args)
      return std::nullopt;
    return Ctx.mkAnd(std::move(*Args));
  }
  case Z3_OP_OR: {
    auto Args = allArgs();
    if (!Args)
      return std::nullopt;
    return Ctx.mkOr(std::move(*Args));
  }
  case Z3_OP_NOT: {
    auto A0 = arg(0);
    if (!A0)
      return std::nullopt;
    return Ctx.mkNot(*A0);
  }
  case Z3_OP_IMPLIES: {
    auto A0 = arg(0), A1 = arg(1);
    if (!A0 || !A1)
      return std::nullopt;
    return Ctx.mkImplies(*A0, *A1);
  }
  case Z3_OP_EQ: {
    auto A0 = arg(0), A1 = arg(1);
    if (!A0 || !A1)
      return std::nullopt;
    if ((*A0)->isBool() || (*A1)->isBool())
      return std::nullopt; // Boolean equality: out of fragment.
    return Ctx.mkEq(*A0, *A1);
  }
  case Z3_OP_DISTINCT: {
    if (N != 2)
      return std::nullopt;
    auto A0 = arg(0), A1 = arg(1);
    if (!A0 || !A1)
      return std::nullopt;
    return Ctx.mkNe(*A0, *A1);
  }
  case Z3_OP_LE: {
    auto A0 = arg(0), A1 = arg(1);
    if (!A0 || !A1)
      return std::nullopt;
    return Ctx.mkLe(*A0, *A1);
  }
  case Z3_OP_LT: {
    auto A0 = arg(0), A1 = arg(1);
    if (!A0 || !A1)
      return std::nullopt;
    return Ctx.mkLt(*A0, *A1);
  }
  case Z3_OP_GE: {
    auto A0 = arg(0), A1 = arg(1);
    if (!A0 || !A1)
      return std::nullopt;
    return Ctx.mkGe(*A0, *A1);
  }
  case Z3_OP_GT: {
    auto A0 = arg(0), A1 = arg(1);
    if (!A0 || !A1)
      return std::nullopt;
    return Ctx.mkGt(*A0, *A1);
  }
  case Z3_OP_ADD: {
    auto Args = allArgs();
    if (!Args)
      return std::nullopt;
    return Ctx.mkAdd(std::move(*Args));
  }
  case Z3_OP_SUB: {
    auto Args = allArgs();
    if (!Args || Args->empty())
      return std::nullopt;
    ExprRef Acc = (*Args)[0];
    for (std::size_t I = 1; I < Args->size(); ++I)
      Acc = Ctx.mkSub(Acc, (*Args)[I]);
    return Acc;
  }
  case Z3_OP_UMINUS: {
    auto A0 = arg(0);
    if (!A0)
      return std::nullopt;
    return Ctx.mkNeg(*A0);
  }
  case Z3_OP_MUL: {
    auto Args = allArgs();
    if (!Args || Args->empty())
      return std::nullopt;
    ExprRef Acc = (*Args)[0];
    for (std::size_t I = 1; I < Args->size(); ++I)
      Acc = Ctx.mkMul(Acc, (*Args)[I]);
    return Acc;
  }
  case Z3_OP_UNINTERPRETED: {
    if (N != 0)
      return std::nullopt; // Function application: out of fragment.
    Z3_symbol Sym = Z3_get_decl_name(C, Decl);
    if (Z3_get_symbol_kind(C, Sym) != Z3_STRING_SYMBOL)
      return std::nullopt;
    return Ctx.mkVar(Z3_get_symbol_string(C, Sym));
  }
  default:
    return std::nullopt;
  }
}

} // namespace

std::optional<ExprRef> chute::fromZ3(Z3Context &Z3, ExprContext &Ctx,
                                     Z3_ast A) {
  return fromZ3Impl(Z3, Ctx, A);
}
