//===- smt/CacheStore.h - Sharded slab store for durable verdicts -*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable half of the query cache, rebuilt the way KVell builds
/// its KV store: entries (definite Sat/Unsat verdicts, QE pairs,
/// unsat cores) are sharded by structural key hash across N
/// append-only slab files with a versioned, checksummed record
/// framing; an in-memory offset index is rebuilt by scanning the
/// slabs on open; sessions and the daemon append new entries
/// incrementally at close/checkpoint instead of rewriting a file
/// wholesale; and superseded or corrupt records are reclaimed by a
/// background compaction pass. Keys are structural — the FNV-1a hash
/// of an expression's canonical serialisation (cachefmt::exprText) —
/// so a QE pair or unsat core discharged while verifying one program
/// warm starts every other program that meets the same formula.
///
/// On-disk layout inside the cache directory:
///
///   slab-<NN>.chute        shard NN's records, append-only
///   slab-<NN>.lock         advisory lock serialising writers of NN
///
/// Each slab starts with a header line
///
///   CHUTE-SLAB <schema> <z3-version> <shard> <nshards> <generation>
///
/// followed by records, each a frame line plus payload:
///
///   R <kind> <keyhash> <payload-bytes> <payload-fnv1a>
///   <payload: one-record cachefmt body>
///
/// Concurrency: writers take the slab's advisory lock exclusively
/// and append the whole batch as one write; readers scan under a
/// shared lock, so they only ever see complete records. Two
/// processes appending to one directory therefore union their
/// entries — last-writer-wins whole-file clobbering is structurally
/// impossible. Within a process, one CacheStore instance per
/// directory is shared through open()'s registry and is fully
/// thread-safe.
///
/// Recovery: the index rebuild trusts nothing. A record whose frame
/// is unparseable, runs past EOF, or fails its checksum at the tail
/// is a torn tail — everything from its first byte on is discarded
/// (and physically truncated by the next writer before it appends).
/// A checksum failure mid-slab (bit rot under an intact successor
/// frame) skips just that record. A slab whose header is damaged or
/// names another schema/Z3 version is rejected wholesale and
/// rewritten by the next append. In every case a corrupt record
/// costs time, never a verdict: nothing unvalidated reaches the
/// in-memory cache.
///
/// Compaction: superseded records (a newer append for the same
/// structural key), skipped corrupt records and rejected-slab bytes
/// accumulate as garbage. When a slab's dead ratio crosses the
/// threshold it is rewritten — live records only, generation bumped
/// so other processes rescan — either by the store's background
/// thread or synchronously via compactNow().
///
/// Legacy per-program `qc-<key>.chute` files from the pre-slab
/// format are migrated on open: parseable ones are imported into the
/// slabs, unparseable ones (corrupt, or written by another Z3)
/// invalidated; both are then deleted.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_SMT_CACHESTORE_H
#define CHUTE_SMT_CACHESTORE_H

#include "smt/QueryCache.h"

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace chute {

class ExprContext;

/// Slab/index/compaction activity of one store (monotone; shared by
/// every DiskCache shim on the same directory).
struct CacheStoreStats {
  std::uint64_t SlabsScanned = 0;     ///< slab scan passes completed
  std::uint64_t RecordsIndexed = 0;   ///< records accepted into the index
  std::uint64_t TornTailsTruncated = 0; ///< torn/partial tails discarded
  std::uint64_t CorruptRecordsSkipped = 0; ///< mid-slab checksum/parse skips
  std::uint64_t SlabsRejected = 0;    ///< slabs rejected wholesale (header)
  std::uint64_t RecordsAppended = 0;  ///< new records written
  std::uint64_t DuplicatesSkipped = 0; ///< appends dropped by the index
  std::uint64_t AppendBatches = 0;    ///< append() calls that wrote bytes
  std::uint64_t Compactions = 0;      ///< slab rewrites completed
  std::uint64_t CompactedBytes = 0;   ///< garbage bytes reclaimed
  std::uint64_t LegacyImported = 0;   ///< qc-* files migrated into slabs
  std::uint64_t LegacyInvalidated = 0; ///< qc-* files rejected and removed
  std::uint64_t LockFailures = 0;     ///< advisory locks not acquired
};

/// One cache directory's sharded slab store. Obtain through open();
/// all members are thread-safe.
class CacheStore {
public:
  struct Options {
    /// Slab count. Fixed at directory creation in effect: slabs with
    /// a different nshards in their header are rejected wholesale.
    unsigned Shards = 8;
    /// A slab is compacted when DeadBytes > Ratio * size and size
    /// exceeds MinBytes.
    double CompactDeadRatio = 0.35;
    std::uint64_t CompactMinBytes = 16 * 1024;
    /// Run compaction on a background thread (tests disable this and
    /// drive compactNow() deterministically).
    bool BackgroundCompaction = true;
  };

  /// The store for \p Dir — one instance per directory per process
  /// (a registry hands the same instance to every caller, so the
  /// daemon's registry and concurrent sessions share one index).
  /// Opening scans the slabs, rebuilds the index, and migrates any
  /// legacy qc-* files. \p O only takes effect for the first opener.
  static std::shared_ptr<CacheStore> open(const std::string &Dir,
                                          const Options &O);
  static std::shared_ptr<CacheStore> open(const std::string &Dir) {
    return open(Dir, Options{});
  }

  ~CacheStore();

  CacheStore(const CacheStore &) = delete;
  CacheStore &operator=(const CacheStore &) = delete;

  const std::string &dir() const { return Directory; }
  unsigned shards() const { return Opts.Shards; }

  struct WarmResult {
    std::uint64_t Sat = 0;     ///< Sat/Unsat records imported
    std::uint64_t Qe = 0;      ///< QE pairs imported
    std::uint64_t Cores = 0;   ///< unsat cores imported
    std::uint64_t Rejects = 0; ///< records/slabs rejected during the load
    std::uint64_t total() const { return Sat + Qe + Cores; }
  };

  /// Imports every live entry into \p Cache, rebuilding expressions
  /// in \p Ctx. Entries keyed structurally transfer across programs,
  /// so this is a superset of what the legacy per-program load saw.
  /// Refreshes the index first (picking up other processes'
  /// appends). Never throws, never crashes on garbage input.
  WarmResult warmStart(ExprContext &Ctx, QueryCache &Cache);

  struct AppendResult {
    bool Ok = false;            ///< no I/O error (even if all dups)
    std::uint64_t Sat = 0;      ///< new Sat/Unsat records appended
    std::uint64_t Qe = 0;       ///< new QE records appended
    std::uint64_t Cores = 0;    ///< new core records appended
    std::uint64_t Duplicates = 0; ///< entries the index already held
  };

  /// Appends \p S's entries to their shards, skipping entries the
  /// index already holds (so a warm session's close writes only what
  /// it newly discharged). Torn tails and invalid slabs are healed
  /// (truncated / rewritten) before the batch lands. Each shard's
  /// batch is one write under the slab lock, fsynced.
  AppendResult append(const CacheSnapshot &S);

  /// Synchronous compaction of every slab past the dead threshold
  /// (\p Force compacts any slab with any garbage at all). Tests and
  /// checkpoint paths use this; the background thread does the same
  /// work opportunistically.
  void compactNow(bool Force = false);

  CacheStoreStats stats() const;

  /// Live (indexed, unsuperseded) record count — a gauge, for tests.
  std::uint64_t liveRecords() const;

  /// Shard NN's slab file inside \p Dir.
  static std::string slabPath(const std::string &Dir, unsigned Shard);

private:
  explicit CacheStore(std::string Dir, const Options &O);

  struct IndexEntry {
    std::uint64_t KeyHash = 0;
    std::uint64_t PayloadHash = 0;
    std::uint64_t Offset = 0; ///< payload start within the slab
    std::uint32_t Len = 0;    ///< payload bytes
    std::uint32_t Total = 0;  ///< frame line + payload bytes
    std::uint16_t Shard = 0;
    char Kind = 'S';
  };

  struct SlabState {
    std::uint64_t ScannedOffset = 0; ///< bytes validated so far
    std::uint64_t KnownSize = 0;     ///< file size at last scan
    std::uint64_t Generation = 0;    ///< header generation seen
    std::uint64_t DeadBytes = 0;     ///< superseded/corrupt bytes
    bool Invalid = false; ///< bad header: rewritten on next append
  };

  /// A decoded entry staged for append.
  struct Pending {
    char Kind;
    std::uint64_t KeyHash;
    std::uint64_t PayloadHash;
    std::string Payload;
  };

  // All of the below require Mu (file I/O included — appends and
  // scans are rare and batch-sized, so one store-wide mutex keeps
  // the invariants simple; cross-process safety comes from the
  // per-slab advisory locks).
  void scanSlabLocked(unsigned Shard);
  void refreshLocked();
  std::size_t stageSnapshotLocked(const CacheSnapshot &S,
                                  std::vector<std::vector<Pending>> &ByShard,
                                  AppendResult &Out);
  void dropSlabFromIndex(unsigned Shard);
  bool appendToShard(unsigned Shard, std::vector<Pending> &Batch,
                     AppendResult &Out);
  void compactSlabLocked(unsigned Shard);
  void maybeScheduleCompaction(unsigned Shard);
  void migrateLegacyLocked();
  std::uint64_t indexKey(char Kind, std::uint64_t KeyHash) const;
  std::string headerLine(unsigned Shard, std::uint64_t Gen) const;
  bool parseHeader(const std::string &Line, unsigned Shard,
                   std::uint64_t &Gen) const;

  const std::string Directory;
  const Options Opts;

  mutable std::mutex Mu;
  std::unordered_map<std::uint64_t, IndexEntry> Index;
  std::vector<SlabState> Slabs;
  CacheStoreStats St;

  // Background compaction.
  std::condition_variable CompactCv;
  std::vector<unsigned> CompactQueue;
  bool ShuttingDown = false;
  std::thread Compactor;
};

} // namespace chute

#endif // CHUTE_SMT_CACHESTORE_H
