//===- smt/SmtQueries.h - High-level SMT facade ---------------*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Smt facade every analysis talks to: satisfiability, validity,
/// implication/equivalence between state formulas, model extraction,
/// and quantifier elimination via Z3's qe tactic. One instance wraps
/// one ExprContext; queries are stateless.
///
/// The facade is also the fault-tolerance boundary of the pipeline:
/// every query runs under the governing Budget (per-query timeouts
/// are derived from the remaining time, and queries are refused
/// outright once the budget expires), and Unknown answers are
/// retried on a fresh, re-seeded solver with escalating timeouts up
/// to a bounded backoff schedule. Per-phase retry statistics record
/// where the solver struggled.
///
/// Concurrency model: Z3 contexts are not thread-safe, so the facade
/// owns one Z3Context per thread that queries it (created lazily,
/// destroyed with the facade). Everything else that mutates — the
/// query counter, the per-phase stats, the result cache — is atomic
/// or mutex-guarded, so the parallel proof scheduler may issue
/// queries from any worker. checkSatBatch is the bulk entry point:
/// it discharges independent obligations across the global TaskPool.
///
/// Definite verdicts and successful QE outputs are memoized in a
/// content-addressed QueryCache keyed on the structural hash that
/// every hash-consed node carries, which makes the re-queries of
/// successive refinement rounds nearly free.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_SMT_SMTQUERIES_H
#define CHUTE_SMT_SMTQUERIES_H

#include "expr/Expr.h"
#include "smt/Model.h"
#include "smt/QueryCache.h"
#include "smt/SmtSession.h"
#include "smt/Z3Context.h"
#include "smt/Z3Solver.h"
#include "support/Budget.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

namespace chute {

/// Backoff schedule for Unknown/timeout answers.
struct RetryPolicy {
  /// Extra attempts after the first (0 disables retrying).
  unsigned MaxRetries = 2;
  /// Timeout multiplier applied per retry.
  double Backoff = 2.0;
};

/// Counters for one retry site (keyed by FailPhase).
struct RetryStats {
  std::uint64_t Queries = 0;      ///< checks issued at this site
  std::uint64_t Unknowns = 0;     ///< attempts that answered Unknown
  std::uint64_t Retries = 0;      ///< re-runs scheduled
  std::uint64_t Recovered = 0;    ///< queries rescued by a retry
  std::uint64_t Exhausted = 0;    ///< Unknown after the full schedule
  std::uint64_t BudgetDenied = 0; ///< refused: budget already expired
  std::uint64_t CacheHits = 0;    ///< answered from the QueryCache

  RetryStats &operator+=(const RetryStats &O) {
    Queries += O.Queries;
    Unknowns += O.Unknowns;
    Retries += O.Retries;
    Recovered += O.Recovered;
    Exhausted += O.Exhausted;
    BudgetDenied += O.BudgetDenied;
    CacheHits += O.CacheHits;
    return *this;
  }
};

/// High-level SMT query interface used throughout the verifier.
///
/// Unknown answers (timeouts) are conservatively mapped: isValid and
/// implies answer false (a proof is not established), isSat answers
/// true only for genuine Sat.
class Smt {
public:
  /// \p Shared, when non-null, is used as this facade's query cache
  /// instead of a private one — the mechanism VerificationSession
  /// uses to share one content-addressed store (verdicts, QE
  /// outputs, unsat cores) across the Verifiers of many properties.
  /// The cache is keyed on hash-consed pointers, so every facade
  /// sharing it must wrap the same ExprContext.
  explicit Smt(ExprContext &Ctx, unsigned TimeoutMs = 10000,
               std::shared_ptr<QueryCache> Shared = nullptr);
  ~Smt();

  ExprContext &exprContext() { return Ctx; }

  /// The Z3 context owned by this facade for the *calling thread*
  /// (created on first use).
  Z3Context &z3Context() { return threadZ3(); }

  /// Installs the governing budget; per-query timeouts derive from
  /// its remaining time (capped by the construction-time TimeoutMs)
  /// and queries are refused once it expires.
  void setBudget(const Budget &B) { Governor = B; }

  /// The budget governing queries issued by the *calling thread*:
  /// the thread-local override installed by a live BudgetScope on
  /// this thread (for this facade), else the facade-wide governor.
  const Budget &budget() const {
    if (LaneOwner == this && LaneBudget != nullptr)
      return *LaneBudget;
    return Governor;
  }

  /// RAII thread-local budget override. A speculative proof lane
  /// installs its per-lane budget (a child cancel domain) so the
  /// queries *it* issues can be cancelled without touching sibling
  /// lanes that share the facade. Valid because a lane's nested
  /// parallel sections run inline: all of its queries stay on the
  /// installing thread. \p B must outlive the scope.
  class BudgetScope {
  public:
    BudgetScope(Smt &S, const Budget &B)
        : PrevOwner(LaneOwner), PrevBudget(LaneBudget) {
      LaneOwner = &S;
      LaneBudget = &B;
    }
    ~BudgetScope() {
      LaneOwner = PrevOwner;
      LaneBudget = PrevBudget;
    }

    BudgetScope(const BudgetScope &) = delete;
    BudgetScope &operator=(const BudgetScope &) = delete;

  private:
    const Smt *PrevOwner;
    const Budget *PrevBudget;
  };

  void setRetryPolicy(RetryPolicy P) { Policy = P; }
  const RetryPolicy &retryPolicy() const { return Policy; }

  /// Current retry-stats site; analyses label their query batches
  /// with SmtPhaseScope.
  void setPhase(FailPhase P) { CurPhase.store(P, std::memory_order_relaxed); }
  FailPhase phase() const { return CurPhase.load(std::memory_order_relaxed); }

  /// Raw three-valued satisfiability.
  SatResult checkSat(ExprRef E);

  /// Discharges a batch of independent satisfiability queries,
  /// fanning out across TaskPool::global() when it is parallel
  /// (inline and in order otherwise). Results line up with \p Es.
  std::vector<SatResult> checkSatBatch(const std::vector<ExprRef> &Es);

  /// True iff \p E is satisfiable (Unknown maps to false).
  bool isSat(ExprRef E);

  /// True iff \p E is unsatisfiable (Unknown maps to false).
  bool isUnsat(ExprRef E);

  /// True iff \p E is valid (Unknown maps to false).
  bool isValid(ExprRef E);

  /// True iff \p A implies \p B for all assignments.
  bool implies(ExprRef A, ExprRef B);

  /// True iff \p A and \p B are logically equivalent.
  bool equivalent(ExprRef A, ExprRef B);

  /// A model of \p E, or nullopt when unsat/unknown. The model covers
  /// the free variables of \p E.
  std::optional<Model> getModel(ExprRef E);

  /// Eliminates the quantifiers of \p E with Z3's qe tactic and
  /// translates back; nullopt when the result leaves the supported
  /// fragment or the tactic fails. Runs under the budget-derived
  /// timeout. Successful outputs are memoized.
  std::optional<ExprRef> eliminateQuantifiers(ExprRef E);

  /// Number of queries issued so far, cache hits included (for
  /// stats/ablations).
  std::uint64_t numQueries() const {
    return NumQueries.load(std::memory_order_relaxed);
  }

  /// Per-phase retry statistics (snapshot).
  std::map<FailPhase, RetryStats> retryStats() const {
    std::lock_guard<std::mutex> Lock(StatsMu);
    return Stats;
  }

  /// Aggregate over all phases.
  RetryStats totalRetryStats() const;

  /// The memoized-verdict cache shared by all threads of this facade
  /// (and, under a VerificationSession, by sibling facades).
  QueryCache &queryCache() { return *Cache; }
  QueryCacheStats cacheStats() const { return Cache->stats(); }
  /// The owning handle, for callers that outlive this facade.
  std::shared_ptr<QueryCache> queryCachePtr() const { return Cache; }

  //===-- Incremental sessions ---------------------------------------===//
  // Each worker thread owns a persistent SmtSession next to its
  // Z3Context; queries run there first (assumption literals keep the
  // solver warm across the refinement rounds) and fall back to the
  // classic fresh-solver retry schedule on Unknown. On by default;
  // CHUTE_INCREMENTAL=0 disables the layer through
  // resolveEnvOverrides (the facade itself never reads the
  // environment), and tests can toggle it directly.

  /// Whether queries use the persistent per-thread sessions.
  bool incrementalEnabled() const {
    return Incremental.load(std::memory_order_relaxed);
  }
  void setIncremental(bool On) {
    Incremental.store(On, std::memory_order_relaxed);
  }

  /// Current incremental cache generation. Bumped when any session
  /// hits a Z3 error, which also retires every cache entry earlier
  /// generations produced.
  std::uint32_t incrementalEpoch() const {
    return IncEpoch.load(std::memory_order_relaxed);
  }

  /// Aggregate session statistics over all worker threads. Exact only
  /// after parallel sections have joined (sessions are written by
  /// their owning threads without synchronisation).
  SmtSessionStats sessionStats() const;

private:
  /// The shared query driver: check \p E with retry/backoff; when
  /// \p WantModel, extract a model on Sat.
  SatResult runQuery(ExprRef E, bool WantModel,
                     std::optional<Model> *ModelOut);

  /// Incremental attempt 0 of runQuery for verdict-only queries:
  /// core-subsumption probe, then one check on this thread's
  /// session. Returns Unknown to make the caller fall back to the
  /// fresh-solver schedule. \p CoreHit is set when a cached unsat
  /// core answered without touching a solver.
  SatResult runIncremental(ExprRef E, unsigned T, bool &CoreHit);

  /// This thread's Z3 context (lazily created).
  Z3Context &threadZ3();

  /// This thread's persistent session (lazily created over the
  /// thread's Z3Context).
  SmtSession &threadSession();

  /// Thread-local budget override (see BudgetScope). Owner-tagged so
  /// the override only applies to the facade it was installed for.
  static thread_local const Smt *LaneOwner;
  static thread_local const Budget *LaneBudget;

  ExprContext &Ctx;
  unsigned TimeoutMs;
  Budget Governor; ///< unlimited by default
  RetryPolicy Policy;
  std::atomic<FailPhase> CurPhase{FailPhase::None};

  /// Guards ThreadZ3/ThreadSessions (contexts and sessions themselves
  /// are single-thread-owned). Sessions are declared after the
  /// contexts they borrow so they are destroyed first.
  mutable std::mutex Z3Mu;
  std::unordered_map<std::thread::id, std::unique_ptr<Z3Context>> ThreadZ3;
  std::unordered_map<std::thread::id, std::unique_ptr<SmtSession>>
      ThreadSessions;

  /// Persistent-session layer toggle (CHUTE_INCREMENTAL=0 disables).
  std::atomic<bool> Incremental;
  /// Incremental cache generation; entries tagged with an older
  /// generation than the retire watermark are dropped.
  std::atomic<std::uint32_t> IncEpoch{1};

  mutable std::mutex StatsMu;
  std::map<FailPhase, RetryStats> Stats;
  std::atomic<std::uint64_t> NumQueries{0};

  /// Never null; either private to this facade or shared by a
  /// session across facades (QueryCache is internally thread-safe).
  std::shared_ptr<QueryCache> Cache;
};

/// RAII phase label for a batch of queries.
class SmtPhaseScope {
public:
  SmtPhaseScope(Smt &S, FailPhase P) : S(S), Prev(S.phase()) {
    S.setPhase(P);
  }
  ~SmtPhaseScope() { S.setPhase(Prev); }

  SmtPhaseScope(const SmtPhaseScope &) = delete;
  SmtPhaseScope &operator=(const SmtPhaseScope &) = delete;

private:
  Smt &S;
  FailPhase Prev;
};

} // namespace chute

#endif // CHUTE_SMT_SMTQUERIES_H
