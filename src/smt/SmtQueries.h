//===- smt/SmtQueries.h - High-level SMT facade ---------------*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Smt facade every analysis talks to: satisfiability, validity,
/// implication/equivalence between state formulas, model extraction,
/// and quantifier elimination via Z3's qe tactic. One instance wraps
/// one Z3 context and one ExprContext; queries are stateless.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_SMT_SMTQUERIES_H
#define CHUTE_SMT_SMTQUERIES_H

#include "expr/Expr.h"
#include "smt/Model.h"
#include "smt/Z3Context.h"
#include "smt/Z3Solver.h"

#include <optional>

namespace chute {

/// High-level SMT query interface used throughout the verifier.
///
/// Unknown answers (timeouts) are conservatively mapped: isValid and
/// implies answer false (a proof is not established), isSat answers
/// true only for genuine Sat.
class Smt {
public:
  explicit Smt(ExprContext &Ctx, unsigned TimeoutMs = 10000);

  ExprContext &exprContext() { return Ctx; }
  Z3Context &z3Context() { return Z3; }

  /// Raw three-valued satisfiability.
  SatResult checkSat(ExprRef E);

  /// True iff \p E is satisfiable (Unknown maps to false).
  bool isSat(ExprRef E);

  /// True iff \p E is unsatisfiable (Unknown maps to false).
  bool isUnsat(ExprRef E);

  /// True iff \p E is valid (Unknown maps to false).
  bool isValid(ExprRef E);

  /// True iff \p A implies \p B for all assignments.
  bool implies(ExprRef A, ExprRef B);

  /// True iff \p A and \p B are logically equivalent.
  bool equivalent(ExprRef A, ExprRef B);

  /// A model of \p E, or nullopt when unsat/unknown. The model covers
  /// the free variables of \p E.
  std::optional<Model> getModel(ExprRef E);

  /// Eliminates the quantifiers of \p E with Z3's qe tactic and
  /// translates back; nullopt when the result leaves the supported
  /// fragment or the tactic fails.
  std::optional<ExprRef> eliminateQuantifiers(ExprRef E);

  /// Number of solver queries issued so far (for stats/ablations).
  std::uint64_t numQueries() const { return NumQueries; }

private:
  ExprContext &Ctx;
  Z3Context Z3;
  unsigned TimeoutMs;
  std::uint64_t NumQueries = 0;
};

} // namespace chute

#endif // CHUTE_SMT_SMTQUERIES_H
