//===- smt/SmtQueries.cpp - High-level SMT facade ---------------------------===//

#include "smt/SmtQueries.h"

#include "smt/Z3Translate.h"
#include "support/Debug.h"

#include <algorithm>

using namespace chute;

Smt::Smt(ExprContext &Ctx, unsigned TimeoutMs)
    : Ctx(Ctx), TimeoutMs(TimeoutMs) {}

RetryStats Smt::totalRetryStats() const {
  RetryStats Total;
  for (const auto &[Phase, St] : Stats)
    Total += St;
  return Total;
}

SatResult Smt::runQuery(ExprRef E, bool WantModel,
                        std::optional<Model> *ModelOut) {
  ++NumQueries;
  RetryStats &St = Stats[CurPhase];
  ++St.Queries;

  if (Governor.expired() ||
      Governor.remainingMs() < Budget::MinQueryMs) {
    ++St.BudgetDenied;
    return SatResult::Unknown;
  }

  unsigned T = Governor.queryTimeoutMs(TimeoutMs);
  for (unsigned Attempt = 0;; ++Attempt) {
    // A fresh solver per attempt; replaying the assertions is just
    // re-adding E. Re-seeding steers the solver's randomized
    // heuristics onto a different search order.
    Z3Solver Solver(Z3, T, /*Seed=*/Attempt);
    Solver.add(E);
    SatResult R = Solver.check();
    if (R != SatResult::Unknown) {
      if (Attempt != 0)
        ++St.Recovered;
      if (R == SatResult::Sat && WantModel)
        *ModelOut = Solver.getModel(freeVars(E));
      return R;
    }
    ++St.Unknowns;
    if (Attempt >= Policy.MaxRetries || Governor.expired()) {
      ++St.Exhausted;
      return SatResult::Unknown;
    }
    ++St.Retries;
    // Escalate, but never past the remaining budget.
    T = Governor.queryTimeoutMs(static_cast<unsigned>(std::min(
        static_cast<double>(T) * Policy.Backoff, 3600000.0)));
    CHUTE_DEBUG(debugLine("smt: retrying Unknown with timeout " +
                          std::to_string(T) + "ms"));
  }
}

SatResult Smt::checkSat(ExprRef E) {
  SatResult R = runQuery(E, /*WantModel=*/false, nullptr);
  CHUTE_DEBUG(debugLine("checkSat(" + E->toString() +
                        ") = " + toString(R)));
  return R;
}

bool Smt::isSat(ExprRef E) { return checkSat(E) == SatResult::Sat; }

bool Smt::isUnsat(ExprRef E) { return checkSat(E) == SatResult::Unsat; }

bool Smt::isValid(ExprRef E) { return isUnsat(Ctx.mkNot(E)); }

bool Smt::implies(ExprRef A, ExprRef B) {
  return isUnsat(Ctx.mkAnd(A, Ctx.mkNot(B)));
}

bool Smt::equivalent(ExprRef A, ExprRef B) {
  return implies(A, B) && implies(B, A);
}

std::optional<Model> Smt::getModel(ExprRef E) {
  std::optional<Model> M;
  if (runQuery(E, /*WantModel=*/true, &M) != SatResult::Sat)
    return std::nullopt;
  return M;
}

std::optional<ExprRef> Smt::eliminateQuantifiers(ExprRef E) {
  ++NumQueries;
  if (Governor.expired()) {
    ++Stats[CurPhase].BudgetDenied;
    return std::nullopt;
  }
  Z3_context C = Z3.raw();
  Z3.clearError();

  Z3_tactic Qe = Z3_mk_tactic(C, "qe");
  Z3_tactic_inc_ref(C, Qe);
  Z3_tactic Simp = Z3_mk_tactic(C, "ctx-simplify");
  Z3_tactic_inc_ref(C, Simp);
  Z3_tactic Pipeline = Z3_tactic_and_then(C, Qe, Simp);
  Z3_tactic_inc_ref(C, Pipeline);

  Z3_goal Goal = Z3_mk_goal(C, /*models=*/false, /*unsat_cores=*/false,
                            /*proofs=*/false);
  Z3_goal_inc_ref(C, Goal);
  Z3_goal_assert(C, Goal, toZ3(Z3, E));

  // Bound the tactic by the budget-derived timeout; an un-bounded qe
  // call was the one remaining way a single query could stall the
  // whole run. Tactics reject a "timeout" parameter, so the bound is
  // a try-for wrapper: on expiry the application fails and we return
  // nullopt (the caller falls back or degrades).
  unsigned T = Governor.queryTimeoutMs(TimeoutMs);
  Z3_tactic Bounded = Z3_tactic_try_for(C, Pipeline, T);
  Z3_tactic_inc_ref(C, Bounded);

  std::optional<ExprRef> Result;
  Z3_apply_result Applied = Z3_tactic_apply(C, Bounded, Goal);
  if (Applied != nullptr && !Z3.hasError()) {
    Z3_apply_result_inc_ref(C, Applied);
    // Conjoin all formulas across all subgoals.
    std::vector<ExprRef> Parts;
    bool Ok = true;
    unsigned NumGoals = Z3_apply_result_get_num_subgoals(C, Applied);
    for (unsigned G = 0; G < NumGoals && Ok; ++G) {
      Z3_goal Sub = Z3_apply_result_get_subgoal(C, Applied, G);
      unsigned Size = Z3_goal_size(C, Sub);
      for (unsigned I = 0; I < Size && Ok; ++I) {
        auto Back = fromZ3(Z3, Ctx, Z3_goal_formula(C, Sub, I));
        if (!Back) {
          Ok = false;
          break;
        }
        Parts.push_back(*Back);
      }
    }
    if (Ok)
      Result = Ctx.mkAnd(std::move(Parts));
    Z3_apply_result_dec_ref(C, Applied);
  }
  Z3.clearError();

  Z3_goal_dec_ref(C, Goal);
  Z3_tactic_dec_ref(C, Bounded);
  Z3_tactic_dec_ref(C, Pipeline);
  Z3_tactic_dec_ref(C, Simp);
  Z3_tactic_dec_ref(C, Qe);
  return Result;
}
