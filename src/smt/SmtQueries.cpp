//===- smt/SmtQueries.cpp - High-level SMT facade ---------------------------===//

#include "smt/SmtQueries.h"

#include "obs/Trace.h"
#include "smt/Z3Translate.h"
#include "support/Debug.h"
#include "support/Env.h"
#include "support/TaskPool.h"

#include <algorithm>

using namespace chute;

thread_local const Smt *Smt::LaneOwner = nullptr;
thread_local const Budget *Smt::LaneBudget = nullptr;

// A bare facade defaults to incremental on; CHUTE_INCREMENTAL is
// resolved only by resolveEnvOverrides (core/Options.h), which is
// how Verifier/VerificationSession configure this toggle.
Smt::Smt(ExprContext &Ctx, unsigned TimeoutMs,
         std::shared_ptr<QueryCache> Shared)
    : Ctx(Ctx), TimeoutMs(TimeoutMs), Incremental(true),
      Cache(Shared ? std::move(Shared)
                   : std::make_shared<QueryCache>()) {}

Smt::~Smt() = default;

Z3Context &Smt::threadZ3() {
  std::thread::id Me = std::this_thread::get_id();
  std::lock_guard<std::mutex> Lock(Z3Mu);
  std::unique_ptr<Z3Context> &Slot = ThreadZ3[Me];
  if (!Slot)
    Slot = std::make_unique<Z3Context>();
  return *Slot;
}

SmtSession &Smt::threadSession() {
  std::thread::id Me = std::this_thread::get_id();
  std::lock_guard<std::mutex> Lock(Z3Mu);
  std::unique_ptr<Z3Context> &Zc = ThreadZ3[Me];
  if (!Zc)
    Zc = std::make_unique<Z3Context>();
  std::unique_ptr<SmtSession> &Slot = ThreadSessions[Me];
  if (!Slot)
    Slot = std::make_unique<SmtSession>(*Zc);
  return *Slot;
}

SmtSessionStats Smt::sessionStats() const {
  std::lock_guard<std::mutex> Lock(Z3Mu);
  SmtSessionStats Total;
  for (const auto &[Tid, Session] : ThreadSessions)
    Total += Session->stats();
  return Total;
}

RetryStats Smt::totalRetryStats() const {
  std::lock_guard<std::mutex> Lock(StatsMu);
  RetryStats Total;
  for (const auto &[Phase, St] : Stats)
    Total += St;
  return Total;
}

SatResult Smt::runQuery(ExprRef E, bool WantModel,
                        std::optional<Model> *ModelOut) {
  NumQueries.fetch_add(1, std::memory_order_relaxed);
  const FailPhase Phase = CurPhase.load(std::memory_order_relaxed);

  obs::Span Sp(obs::Category::Smt, "check-sat");
  obs::bump(obs::Counter::SmtQueries);
  if (Sp.detailed())
    Sp.setDetail(E->toString());

  // Stats are accumulated locally and folded in under the lock on
  // every exit path, so concurrent queries never interleave updates.
  RetryStats Delta;
  ++Delta.Queries;
  auto Commit = [&](SatResult R) {
    Sp.setBudgetRemainingMs(budget().isUnlimited()
                                ? -1
                                : budget().remainingMs());
    switch (R) {
    case SatResult::Sat:
      obs::bump(obs::Counter::SmtSat);
      break;
    case SatResult::Unsat:
      obs::bump(obs::Counter::SmtUnsat);
      break;
    case SatResult::Unknown:
      obs::bump(obs::Counter::SmtUnknown);
      break;
    }
    std::lock_guard<std::mutex> Lock(StatsMu);
    Stats[Phase] += Delta;
    return R;
  };

  // Budget before cache: an expired governor refuses even queries
  // the cache could answer, so the degradation path (BudgetDenied
  // counters, FailureInfo) is identical with and without caching.
  if (budget().expired() ||
      budget().remainingMs() < Budget::MinQueryMs) {
    ++Delta.BudgetDenied;
    Sp.setOutcome("budget-denied");
    obs::bump(obs::Counter::SmtBudgetDenied);
    return Commit(SatResult::Unknown);
  }

  // Cache probe. A model-requesting query can only use a cached
  // Unsat (models are not memoized); a cached Sat still runs the
  // solver below to obtain the assignment.
  if (std::optional<SatResult> Cached = Cache->lookupSat(E)) {
    if (!WantModel || *Cached == SatResult::Unsat) {
      ++Delta.CacheHits;
      Sp.setOutcome("cache-hit");
      obs::bump(obs::Counter::SmtCacheHits);
      return Commit(*Cached);
    }
  }
  obs::bump(obs::Counter::SmtCacheMisses);

  unsigned T = budget().queryTimeoutMs(TimeoutMs);
  unsigned Attempt = 0;
  if (incrementalEnabled() && !WantModel) {
    // Attempt 0 runs on this thread's persistent session (or is
    // answered outright by a cached unsat core). Unknown falls
    // through to the classic fresh-solver schedule below, so the
    // incremental layer can add verdicts but never lose them.
    // Model-requesting queries never take this path: models steer
    // the counterexample search, and a long-lived solver's models —
    // shaped by lemmas from earlier rounds — would steer it onto a
    // different (possibly far slower) trajectory than one-shot mode.
    bool CoreHit = false;
    SatResult R = runIncremental(E, T, CoreHit);
    if (R != SatResult::Unknown) {
      if (CoreHit) {
        ++Delta.CacheHits;
        Sp.setOutcome("core-hit");
      } else {
        Sp.setOutcome(R == SatResult::Sat ? "sat" : "unsat");
      }
      return Commit(R);
    }
    ++Delta.Unknowns;
    obs::bump(obs::Counter::SmtIncFallbacks);
    if (Policy.MaxRetries == 0 || budget().expired()) {
      ++Delta.Exhausted;
      Sp.setOutcome("unknown");
      return Commit(SatResult::Unknown);
    }
    ++Delta.Retries;
    obs::bump(obs::Counter::SmtRetries);
    T = budget().queryTimeoutMs(static_cast<unsigned>(std::min(
        static_cast<double>(T) * Policy.Backoff, 3600000.0)));
    Attempt = 1;
  }

  Z3Context &Zc = threadZ3();
  for (;; ++Attempt) {
    // A fresh solver per attempt; replaying the assertions is just
    // re-adding E. Re-seeding steers the solver's randomized
    // heuristics onto a different search order.
    Z3Solver Solver(Zc, T, /*Seed=*/Attempt);
    Solver.add(E);
    SatResult R = Solver.check();
    if (R != SatResult::Unknown) {
      if (Attempt != 0)
        ++Delta.Recovered;
      if (R == SatResult::Sat && WantModel)
        *ModelOut = Solver.getModel(freeVars(E));
      Cache->storeSat(E, R);
      Sp.setOutcome(R == SatResult::Sat ? "sat" : "unsat");
      return Commit(R);
    }
    ++Delta.Unknowns;
    if (Attempt >= Policy.MaxRetries || budget().expired()) {
      ++Delta.Exhausted;
      Sp.setOutcome("unknown");
      return Commit(SatResult::Unknown);
    }
    ++Delta.Retries;
    obs::bump(obs::Counter::SmtRetries);
    // Escalate, but never past the remaining budget.
    T = budget().queryTimeoutMs(static_cast<unsigned>(std::min(
        static_cast<double>(T) * Policy.Backoff, 3600000.0)));
    CHUTE_DEBUG(debugLine("smt: retrying Unknown with timeout " +
                          std::to_string(T) + "ms"));
  }
}

SatResult Smt::runIncremental(ExprRef E, unsigned T, bool &CoreHit) {
  CoreHit = false;
  // Top-level conjuncts are the assumption granularity: successive
  // refinement rounds share the path-formula and transition-relation
  // conjuncts and differ only by the newly synthesised chute
  // conjunct, so those shared parts keep their learned lemmas.
  std::vector<ExprRef> Conjuncts;
  if (E->kind() == ExprKind::And)
    Conjuncts = E->operands();
  else
    Conjuncts.push_back(E);

  if (Cache->subsumedUnsat(Conjuncts)) {
    // A recorded unsat core is a subset of this conjunct set: Unsat
    // by monotonicity, no solver involved.
    CoreHit = true;
    obs::bump(obs::Counter::SmtIncCorePruned);
    return SatResult::Unsat;
  }

  SmtSession &Session = threadSession();
  const std::uint64_t ResetsBefore = Session.stats().Resets;
  const std::uint64_t ErrorsBefore = Session.stats().ErrorResets;

  obs::bump(obs::Counter::SmtIncChecks);
  std::vector<ExprRef> Core;
  SatResult R = Session.check(Conjuncts, T, /*Seed=*/0, &Core);

  if (Session.stats().Resets != ResetsBefore)
    obs::bump(obs::Counter::SmtIncResets);
  if (Session.stats().ErrorResets != ErrorsBefore) {
    // The session hit a Z3 error, so verdicts it produced earlier are
    // suspect: open a new generation and retire everything older
    // generations put into the shared cache. (Defense in depth — the
    // erroring check itself already answered Unknown.)
    std::uint32_t NewEpoch =
        IncEpoch.fetch_add(1, std::memory_order_relaxed) + 1;
    Cache->retireIncrementalBefore(NewEpoch);
  }

  if (R == SatResult::Unknown)
    return R;
  std::uint32_t Epoch = IncEpoch.load(std::memory_order_relaxed);
  Cache->storeSat(E, R, Epoch);
  if (R == SatResult::Unsat && !Core.empty())
    Cache->storeUnsatCore(std::move(Core), Epoch);
  return R;
}

SatResult Smt::checkSat(ExprRef E) {
  SatResult R = runQuery(E, /*WantModel=*/false, nullptr);
  CHUTE_DEBUG(debugLine("checkSat(" + E->toString() +
                        ") = " + toString(R)));
  return R;
}

std::vector<SatResult> Smt::checkSatBatch(const std::vector<ExprRef> &Es) {
  std::vector<SatResult> Out(Es.size(), SatResult::Unknown);
  TaskPool::global().parallelFor(
      Es.size(), [&](std::size_t I) { Out[I] = checkSat(Es[I]); });
  return Out;
}

bool Smt::isSat(ExprRef E) { return checkSat(E) == SatResult::Sat; }

bool Smt::isUnsat(ExprRef E) { return checkSat(E) == SatResult::Unsat; }

bool Smt::isValid(ExprRef E) { return isUnsat(Ctx.mkNot(E)); }

bool Smt::implies(ExprRef A, ExprRef B) {
  return isUnsat(Ctx.mkAnd(A, Ctx.mkNot(B)));
}

bool Smt::equivalent(ExprRef A, ExprRef B) {
  return implies(A, B) && implies(B, A);
}

std::optional<Model> Smt::getModel(ExprRef E) {
  std::optional<Model> M;
  if (runQuery(E, /*WantModel=*/true, &M) != SatResult::Sat)
    return std::nullopt;
  return M;
}

std::optional<ExprRef> Smt::eliminateQuantifiers(ExprRef E) {
  NumQueries.fetch_add(1, std::memory_order_relaxed);
  const FailPhase Phase = CurPhase.load(std::memory_order_relaxed);

  obs::Span Sp(obs::Category::Smt, "qe-tactic");
  if (Sp.detailed())
    Sp.setDetail(E->toString());

  if (budget().expired()) {
    Sp.setOutcome("budget-denied");
    obs::bump(obs::Counter::SmtBudgetDenied);
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats[Phase].BudgetDenied;
    return std::nullopt;
  }

  // QE outputs are deterministic given the input formula, so a prior
  // successful elimination answers immediately.
  if (std::optional<ExprRef> Cached = Cache->lookupQe(E)) {
    Sp.setOutcome("cache-hit");
    obs::bump(obs::Counter::SmtCacheHits);
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats[Phase].CacheHits;
    return *Cached;
  }
  obs::bump(obs::Counter::SmtCacheMisses);

  Z3Context &Zc = threadZ3();
  Z3_context C = Zc.raw();
  Zc.clearError();

  Z3_tactic Qe = Z3_mk_tactic(C, "qe");
  Z3_tactic_inc_ref(C, Qe);
  Z3_tactic Simp = Z3_mk_tactic(C, "ctx-simplify");
  Z3_tactic_inc_ref(C, Simp);
  Z3_tactic Pipeline = Z3_tactic_and_then(C, Qe, Simp);
  Z3_tactic_inc_ref(C, Pipeline);

  Z3_goal Goal = Z3_mk_goal(C, /*models=*/false, /*unsat_cores=*/false,
                            /*proofs=*/false);
  Z3_goal_inc_ref(C, Goal);
  Z3_goal_assert(C, Goal, toZ3(Zc, E));

  // Bound the tactic by the budget-derived timeout; an un-bounded qe
  // call was the one remaining way a single query could stall the
  // whole run. Tactics reject a "timeout" parameter, so the bound is
  // a try-for wrapper: on expiry the application fails and we return
  // nullopt (the caller falls back or degrades).
  unsigned T = budget().queryTimeoutMs(TimeoutMs);
  Z3_tactic Bounded = Z3_tactic_try_for(C, Pipeline, T);
  Z3_tactic_inc_ref(C, Bounded);

  std::optional<ExprRef> Result;
  Z3_apply_result Applied = Z3_tactic_apply(C, Bounded, Goal);
  if (Applied != nullptr && !Zc.hasError()) {
    Z3_apply_result_inc_ref(C, Applied);
    // Conjoin all formulas across all subgoals.
    std::vector<ExprRef> Parts;
    bool Ok = true;
    unsigned NumGoals = Z3_apply_result_get_num_subgoals(C, Applied);
    for (unsigned G = 0; G < NumGoals && Ok; ++G) {
      Z3_goal Sub = Z3_apply_result_get_subgoal(C, Applied, G);
      unsigned Size = Z3_goal_size(C, Sub);
      for (unsigned I = 0; I < Size && Ok; ++I) {
        auto Back = fromZ3(Zc, Ctx, Z3_goal_formula(C, Sub, I));
        if (!Back) {
          Ok = false;
          break;
        }
        Parts.push_back(*Back);
      }
    }
    if (Ok)
      Result = Ctx.mkAnd(std::move(Parts));
    Z3_apply_result_dec_ref(C, Applied);
  }
  Zc.clearError();

  Z3_goal_dec_ref(C, Goal);
  Z3_tactic_dec_ref(C, Bounded);
  Z3_tactic_dec_ref(C, Pipeline);
  Z3_tactic_dec_ref(C, Simp);
  Z3_tactic_dec_ref(C, Qe);
  if (Result)
    Cache->storeQe(E, *Result);
  Sp.setOutcome(Result ? "ok" : "fail");
  Sp.setBudgetRemainingMs(budget().isUnlimited() ? -1
                                                 : budget().remainingMs());
  return Result;
}
