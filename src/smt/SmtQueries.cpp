//===- smt/SmtQueries.cpp - High-level SMT facade ---------------------------===//

#include "smt/SmtQueries.h"

#include "smt/Z3Translate.h"
#include "support/Debug.h"

using namespace chute;

Smt::Smt(ExprContext &Ctx, unsigned TimeoutMs)
    : Ctx(Ctx), TimeoutMs(TimeoutMs) {}

SatResult Smt::checkSat(ExprRef E) {
  ++NumQueries;
  Z3Solver Solver(Z3, TimeoutMs);
  Solver.add(E);
  SatResult R = Solver.check();
  CHUTE_DEBUG(debugLine("checkSat(" + E->toString() +
                        ") = " + toString(R)));
  return R;
}

bool Smt::isSat(ExprRef E) { return checkSat(E) == SatResult::Sat; }

bool Smt::isUnsat(ExprRef E) { return checkSat(E) == SatResult::Unsat; }

bool Smt::isValid(ExprRef E) { return isUnsat(Ctx.mkNot(E)); }

bool Smt::implies(ExprRef A, ExprRef B) {
  return isUnsat(Ctx.mkAnd(A, Ctx.mkNot(B)));
}

bool Smt::equivalent(ExprRef A, ExprRef B) {
  return implies(A, B) && implies(B, A);
}

std::optional<Model> Smt::getModel(ExprRef E) {
  ++NumQueries;
  Z3Solver Solver(Z3, TimeoutMs);
  Solver.add(E);
  if (Solver.check() != SatResult::Sat)
    return std::nullopt;
  return Solver.getModel(freeVars(E));
}

std::optional<ExprRef> Smt::eliminateQuantifiers(ExprRef E) {
  ++NumQueries;
  Z3_context C = Z3.raw();
  Z3.clearError();

  Z3_tactic Qe = Z3_mk_tactic(C, "qe");
  Z3_tactic_inc_ref(C, Qe);
  Z3_tactic Simp = Z3_mk_tactic(C, "ctx-simplify");
  Z3_tactic_inc_ref(C, Simp);
  Z3_tactic Pipeline = Z3_tactic_and_then(C, Qe, Simp);
  Z3_tactic_inc_ref(C, Pipeline);

  Z3_goal Goal = Z3_mk_goal(C, /*models=*/false, /*unsat_cores=*/false,
                            /*proofs=*/false);
  Z3_goal_inc_ref(C, Goal);
  Z3_goal_assert(C, Goal, toZ3(Z3, E));

  std::optional<ExprRef> Result;
  Z3_apply_result Applied = Z3_tactic_apply(C, Pipeline, Goal);
  if (Applied != nullptr && !Z3.hasError()) {
    Z3_apply_result_inc_ref(C, Applied);
    // Conjoin all formulas across all subgoals.
    std::vector<ExprRef> Parts;
    bool Ok = true;
    unsigned NumGoals = Z3_apply_result_get_num_subgoals(C, Applied);
    for (unsigned G = 0; G < NumGoals && Ok; ++G) {
      Z3_goal Sub = Z3_apply_result_get_subgoal(C, Applied, G);
      unsigned Size = Z3_goal_size(C, Sub);
      for (unsigned I = 0; I < Size && Ok; ++I) {
        auto Back = fromZ3(Z3, Ctx, Z3_goal_formula(C, Sub, I));
        if (!Back) {
          Ok = false;
          break;
        }
        Parts.push_back(*Back);
      }
    }
    if (Ok)
      Result = Ctx.mkAnd(std::move(Parts));
    Z3_apply_result_dec_ref(C, Applied);
  }
  Z3.clearError();

  Z3_goal_dec_ref(C, Goal);
  Z3_tactic_dec_ref(C, Pipeline);
  Z3_tactic_dec_ref(C, Simp);
  Z3_tactic_dec_ref(C, Qe);
  return Result;
}
