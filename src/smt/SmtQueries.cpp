//===- smt/SmtQueries.cpp - High-level SMT facade ---------------------------===//

#include "smt/SmtQueries.h"

#include "obs/Trace.h"
#include "smt/Z3Translate.h"
#include "support/Debug.h"
#include "support/TaskPool.h"

#include <algorithm>

using namespace chute;

Smt::Smt(ExprContext &Ctx, unsigned TimeoutMs)
    : Ctx(Ctx), TimeoutMs(TimeoutMs) {}

Smt::~Smt() = default;

Z3Context &Smt::threadZ3() {
  std::thread::id Me = std::this_thread::get_id();
  std::lock_guard<std::mutex> Lock(Z3Mu);
  std::unique_ptr<Z3Context> &Slot = ThreadZ3[Me];
  if (!Slot)
    Slot = std::make_unique<Z3Context>();
  return *Slot;
}

RetryStats Smt::totalRetryStats() const {
  std::lock_guard<std::mutex> Lock(StatsMu);
  RetryStats Total;
  for (const auto &[Phase, St] : Stats)
    Total += St;
  return Total;
}

SatResult Smt::runQuery(ExprRef E, bool WantModel,
                        std::optional<Model> *ModelOut) {
  NumQueries.fetch_add(1, std::memory_order_relaxed);
  const FailPhase Phase = CurPhase.load(std::memory_order_relaxed);

  obs::Span Sp(obs::Category::Smt, "check-sat");
  obs::bump(obs::Counter::SmtQueries);
  if (Sp.detailed())
    Sp.setDetail(E->toString());

  // Stats are accumulated locally and folded in under the lock on
  // every exit path, so concurrent queries never interleave updates.
  RetryStats Delta;
  ++Delta.Queries;
  auto Commit = [&](SatResult R) {
    Sp.setBudgetRemainingMs(Governor.isUnlimited()
                                ? -1
                                : Governor.remainingMs());
    switch (R) {
    case SatResult::Sat:
      obs::bump(obs::Counter::SmtSat);
      break;
    case SatResult::Unsat:
      obs::bump(obs::Counter::SmtUnsat);
      break;
    case SatResult::Unknown:
      obs::bump(obs::Counter::SmtUnknown);
      break;
    }
    std::lock_guard<std::mutex> Lock(StatsMu);
    Stats[Phase] += Delta;
    return R;
  };

  // Budget before cache: an expired governor refuses even queries
  // the cache could answer, so the degradation path (BudgetDenied
  // counters, FailureInfo) is identical with and without caching.
  if (Governor.expired() ||
      Governor.remainingMs() < Budget::MinQueryMs) {
    ++Delta.BudgetDenied;
    Sp.setOutcome("budget-denied");
    obs::bump(obs::Counter::SmtBudgetDenied);
    return Commit(SatResult::Unknown);
  }

  // Cache probe. A model-requesting query can only use a cached
  // Unsat (models are not memoized); a cached Sat still runs the
  // solver below to obtain the assignment.
  if (std::optional<SatResult> Cached = Cache.lookupSat(E)) {
    if (!WantModel || *Cached == SatResult::Unsat) {
      ++Delta.CacheHits;
      Sp.setOutcome("cache-hit");
      obs::bump(obs::Counter::SmtCacheHits);
      return Commit(*Cached);
    }
  }
  obs::bump(obs::Counter::SmtCacheMisses);

  Z3Context &Zc = threadZ3();
  unsigned T = Governor.queryTimeoutMs(TimeoutMs);
  for (unsigned Attempt = 0;; ++Attempt) {
    // A fresh solver per attempt; replaying the assertions is just
    // re-adding E. Re-seeding steers the solver's randomized
    // heuristics onto a different search order.
    Z3Solver Solver(Zc, T, /*Seed=*/Attempt);
    Solver.add(E);
    SatResult R = Solver.check();
    if (R != SatResult::Unknown) {
      if (Attempt != 0)
        ++Delta.Recovered;
      if (R == SatResult::Sat && WantModel)
        *ModelOut = Solver.getModel(freeVars(E));
      Cache.storeSat(E, R);
      Sp.setOutcome(R == SatResult::Sat ? "sat" : "unsat");
      return Commit(R);
    }
    ++Delta.Unknowns;
    if (Attempt >= Policy.MaxRetries || Governor.expired()) {
      ++Delta.Exhausted;
      Sp.setOutcome("unknown");
      return Commit(SatResult::Unknown);
    }
    ++Delta.Retries;
    obs::bump(obs::Counter::SmtRetries);
    // Escalate, but never past the remaining budget.
    T = Governor.queryTimeoutMs(static_cast<unsigned>(std::min(
        static_cast<double>(T) * Policy.Backoff, 3600000.0)));
    CHUTE_DEBUG(debugLine("smt: retrying Unknown with timeout " +
                          std::to_string(T) + "ms"));
  }
}

SatResult Smt::checkSat(ExprRef E) {
  SatResult R = runQuery(E, /*WantModel=*/false, nullptr);
  CHUTE_DEBUG(debugLine("checkSat(" + E->toString() +
                        ") = " + toString(R)));
  return R;
}

std::vector<SatResult> Smt::checkSatBatch(const std::vector<ExprRef> &Es) {
  std::vector<SatResult> Out(Es.size(), SatResult::Unknown);
  TaskPool::global().parallelFor(
      Es.size(), [&](std::size_t I) { Out[I] = checkSat(Es[I]); });
  return Out;
}

bool Smt::isSat(ExprRef E) { return checkSat(E) == SatResult::Sat; }

bool Smt::isUnsat(ExprRef E) { return checkSat(E) == SatResult::Unsat; }

bool Smt::isValid(ExprRef E) { return isUnsat(Ctx.mkNot(E)); }

bool Smt::implies(ExprRef A, ExprRef B) {
  return isUnsat(Ctx.mkAnd(A, Ctx.mkNot(B)));
}

bool Smt::equivalent(ExprRef A, ExprRef B) {
  return implies(A, B) && implies(B, A);
}

std::optional<Model> Smt::getModel(ExprRef E) {
  std::optional<Model> M;
  if (runQuery(E, /*WantModel=*/true, &M) != SatResult::Sat)
    return std::nullopt;
  return M;
}

std::optional<ExprRef> Smt::eliminateQuantifiers(ExprRef E) {
  NumQueries.fetch_add(1, std::memory_order_relaxed);
  const FailPhase Phase = CurPhase.load(std::memory_order_relaxed);

  obs::Span Sp(obs::Category::Smt, "qe-tactic");
  if (Sp.detailed())
    Sp.setDetail(E->toString());

  if (Governor.expired()) {
    Sp.setOutcome("budget-denied");
    obs::bump(obs::Counter::SmtBudgetDenied);
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats[Phase].BudgetDenied;
    return std::nullopt;
  }

  // QE outputs are deterministic given the input formula, so a prior
  // successful elimination answers immediately.
  if (std::optional<ExprRef> Cached = Cache.lookupQe(E)) {
    Sp.setOutcome("cache-hit");
    obs::bump(obs::Counter::SmtCacheHits);
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats[Phase].CacheHits;
    return *Cached;
  }
  obs::bump(obs::Counter::SmtCacheMisses);

  Z3Context &Zc = threadZ3();
  Z3_context C = Zc.raw();
  Zc.clearError();

  Z3_tactic Qe = Z3_mk_tactic(C, "qe");
  Z3_tactic_inc_ref(C, Qe);
  Z3_tactic Simp = Z3_mk_tactic(C, "ctx-simplify");
  Z3_tactic_inc_ref(C, Simp);
  Z3_tactic Pipeline = Z3_tactic_and_then(C, Qe, Simp);
  Z3_tactic_inc_ref(C, Pipeline);

  Z3_goal Goal = Z3_mk_goal(C, /*models=*/false, /*unsat_cores=*/false,
                            /*proofs=*/false);
  Z3_goal_inc_ref(C, Goal);
  Z3_goal_assert(C, Goal, toZ3(Zc, E));

  // Bound the tactic by the budget-derived timeout; an un-bounded qe
  // call was the one remaining way a single query could stall the
  // whole run. Tactics reject a "timeout" parameter, so the bound is
  // a try-for wrapper: on expiry the application fails and we return
  // nullopt (the caller falls back or degrades).
  unsigned T = Governor.queryTimeoutMs(TimeoutMs);
  Z3_tactic Bounded = Z3_tactic_try_for(C, Pipeline, T);
  Z3_tactic_inc_ref(C, Bounded);

  std::optional<ExprRef> Result;
  Z3_apply_result Applied = Z3_tactic_apply(C, Bounded, Goal);
  if (Applied != nullptr && !Zc.hasError()) {
    Z3_apply_result_inc_ref(C, Applied);
    // Conjoin all formulas across all subgoals.
    std::vector<ExprRef> Parts;
    bool Ok = true;
    unsigned NumGoals = Z3_apply_result_get_num_subgoals(C, Applied);
    for (unsigned G = 0; G < NumGoals && Ok; ++G) {
      Z3_goal Sub = Z3_apply_result_get_subgoal(C, Applied, G);
      unsigned Size = Z3_goal_size(C, Sub);
      for (unsigned I = 0; I < Size && Ok; ++I) {
        auto Back = fromZ3(Zc, Ctx, Z3_goal_formula(C, Sub, I));
        if (!Back) {
          Ok = false;
          break;
        }
        Parts.push_back(*Back);
      }
    }
    if (Ok)
      Result = Ctx.mkAnd(std::move(Parts));
    Z3_apply_result_dec_ref(C, Applied);
  }
  Zc.clearError();

  Z3_goal_dec_ref(C, Goal);
  Z3_tactic_dec_ref(C, Bounded);
  Z3_tactic_dec_ref(C, Pipeline);
  Z3_tactic_dec_ref(C, Simp);
  Z3_tactic_dec_ref(C, Qe);
  if (Result)
    Cache.storeQe(E, *Result);
  Sp.setOutcome(Result ? "ok" : "fail");
  Sp.setBudgetRemainingMs(Governor.isUnlimited() ? -1
                                                 : Governor.remainingMs());
  return Result;
}
