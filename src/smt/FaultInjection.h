//===- smt/FaultInjection.h - Deterministic SMT fault injection -*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-global fault plan consulted by Z3Solver::check, so the
/// degradation paths of the resource governor are testable
/// deterministically: force Unknown on every Nth check, or delay
/// every check by a fixed amount. Configured from the environment
/// (CHUTE_SMT_FAULT_EVERY, CHUTE_SMT_FAULT_DELAY_MS) at first use,
/// or programmatically by tests via smtFaultPlan().
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_SMT_FAULTINJECTION_H
#define CHUTE_SMT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>

namespace chute {

/// The active fault plan. All-zero means no injection.
///
/// The fields are atomics because under the parallel proof scheduler
/// the plan is read from Z3Solver::check on every worker thread while
/// tests (or signal-free teardown paths) write it from the main
/// thread. Copy construction/assignment are defined so the idiomatic
/// reset `smtFaultPlan() = SmtFaultPlan()` keeps working.
struct SmtFaultPlan {
  /// Force Unknown on every Nth solver check (0 = disabled; 1 =
  /// every check).
  std::atomic<unsigned> UnknownEveryN{0};
  /// Sleep this long before every solver check (0 = disabled).
  std::atomic<unsigned> DelayMs{0};

  SmtFaultPlan() = default;
  SmtFaultPlan(const SmtFaultPlan &O)
      : UnknownEveryN(O.UnknownEveryN.load(std::memory_order_relaxed)),
        DelayMs(O.DelayMs.load(std::memory_order_relaxed)) {}
  SmtFaultPlan &operator=(const SmtFaultPlan &O) {
    UnknownEveryN.store(O.UnknownEveryN.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    DelayMs.store(O.DelayMs.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    return *this;
  }
};

/// Mutable access to the plan (tests overwrite it; remember to reset
/// in teardown). First call seeds the plan from the environment.
SmtFaultPlan &smtFaultPlan();

/// Resets the every-Nth counter (tests call this for determinism).
void resetSmtFaultCounter();

/// Number of checks the plan has forced to Unknown so far.
std::uint64_t smtFaultInjectedCount();

/// Called by Z3Solver::check before talking to Z3. Applies the
/// configured delay and returns true when this check must report
/// Unknown without running the solver.
bool smtFaultShouldInjectUnknown();

} // namespace chute

#endif // CHUTE_SMT_FAULTINJECTION_H
