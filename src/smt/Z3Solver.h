//===- smt/Z3Solver.h - Incremental Z3 solver wrapper ---------*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An incremental solver over a Z3Context with push/pop scoping,
/// a per-query timeout, and model extraction into chute Models.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_SMT_Z3SOLVER_H
#define CHUTE_SMT_Z3SOLVER_H

#include "expr/Expr.h"
#include "smt/Model.h"
#include "smt/Z3Context.h"

#include <optional>

namespace chute {

/// Three-valued satisfiability answer.
enum class SatResult { Sat, Unsat, Unknown };

/// Renders a SatResult for diagnostics.
const char *toString(SatResult R);

/// Incremental solver. Not copyable; tied to one Z3Context.
class Z3Solver {
public:
  /// \p TimeoutMs bounds each check() call (0 = no limit). \p Seed
  /// re-seeds the solver's randomized heuristics — the retry layer
  /// passes a fresh seed per attempt so a retried query explores a
  /// different search order.
  explicit Z3Solver(Z3Context &Z3, unsigned TimeoutMs = 10000,
                    unsigned Seed = 0);
  ~Z3Solver();

  Z3Solver(const Z3Solver &) = delete;
  Z3Solver &operator=(const Z3Solver &) = delete;

  /// Asserts \p E in the current scope.
  void add(ExprRef E);

  /// Asserts a raw Z3 ast in the current scope.
  void addRaw(Z3_ast A);

  void push();
  void pop();

  /// Checks satisfiability of the asserted formulas.
  SatResult check();

  /// After a Sat answer, extracts values for \p Vars (Var exprs).
  std::optional<Model> getModel(const std::vector<ExprRef> &Vars);

private:
  Z3Context &Z3;
  Z3_solver Solver = nullptr;
};

} // namespace chute

#endif // CHUTE_SMT_Z3SOLVER_H
