//===- smt/FixedpointSolver.h - Z3 Spacer (CHC) wrapper -------*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A budget-aware wrapper over Z3's fixedpoint engine (Spacer),
/// solving systems of constrained Horn clauses built from chute
/// expressions. The ChcBackend encodes CTL safety obligations as
/// reachability queries here; answers map back to verdicts as:
///
///   Unreachable  the query relation is not derivable under any
///                unfolding of the rules — the encoded property holds
///   Reachable    a derivation of the query exists — the property is
///                definitely violated (Spacer found a concrete
///                counterexample derivation)
///   Unknown      timeout / interrupt / engine incompleteness
///
/// The solver owns a private Z3Context (Z3 contexts are not
/// thread-safe and Spacer state is heavy, so backends create one
/// FixedpointSolver per obligation). Budget hookup mirrors the rest
/// of the SMT layer: each query derives its Z3 timeout from the
/// budget's remaining time, and a watchdog thread polls the budget's
/// cancellation flag, interrupting Z3 mid-solve so a losing
/// portfolio lane dies promptly instead of at its next timeout.
///
/// Alongside the native rules the solver accumulates an SMT-LIB
/// fixedpoint script (declare-rel / rule / query, rendered through
/// smt/SmtLibExport) so any CHC system can be dumped for external
/// replay or gate artifacts.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_SMT_FIXEDPOINTSOLVER_H
#define CHUTE_SMT_FIXEDPOINTSOLVER_H

#include "expr/Expr.h"
#include "smt/Z3Context.h"
#include "support/Budget.h"

#include <string>
#include <vector>

namespace chute {

/// Wraps one Z3 fixedpoint (Spacer) instance over a private context.
class FixedpointSolver {
public:
  /// Opaque handle to a declared relation.
  using RelId = unsigned;

  /// An application R(args...) used in rule heads and bodies. Args
  /// are integer-typed chute expressions (usually plain variables).
  struct App {
    RelId Rel = 0;
    std::vector<ExprRef> Args;
  };

  /// Answer of a reachability query (see file comment).
  enum class Result { Unreachable, Reachable, Unknown };

  struct Stats {
    unsigned Relations = 0; ///< declared predicates
    unsigned Rules = 0;     ///< Horn rules added
    unsigned Queries = 0;   ///< reachability queries run
    unsigned Interrupts = 0; ///< queries cut short by cancellation
  };

  FixedpointSolver();
  ~FixedpointSolver();

  FixedpointSolver(const FixedpointSolver &) = delete;
  FixedpointSolver &operator=(const FixedpointSolver &) = delete;

  /// Declares a fresh relation over Int^Arity. Names are uniqued by
  /// the caller (the encoder derives them from CFG locations).
  RelId declareRelation(std::string Name, unsigned Arity);

  /// Adds the Horn rule
  ///   forall vars. (Body[0] && ... && Body[n-1] && Constraint) => Head
  /// where vars are the free variables of every part. \p Constraint
  /// may be null (no side condition); an empty \p Body makes a fact
  /// rule (init states). Returns false when translation failed (the
  /// solver is then poisoned and every query answers Unknown).
  bool addRule(const App &Head, const std::vector<App> &Body,
               ExprRef Constraint);

  /// Asks whether \p Query is derivable. Honours \p B: expired or
  /// cancelled budgets answer Unknown without calling Z3, the Z3
  /// timeout is derived from the remaining time (capped by
  /// \p TimeoutCapMs, the per-query SMT cap), and cancellation mid-
  /// solve interrupts the engine. Also subject to the global SMT
  /// fault plan, so portfolio fault tests can starve this engine.
  Result query(const App &Query, const Budget &B, unsigned TimeoutCapMs);

  const Stats &stats() const { return St; }

  /// The accumulated SMT-LIB fixedpoint script (rules added so far,
  /// plus one query line per query run).
  const std::string &script() const { return Script; }

  /// True once any Z3 error or failed translation poisoned this
  /// system; queries then answer Unknown.
  bool poisoned() const { return Poisoned; }

private:
  Z3_ast translateApp(const App &A);
  void collectVars(ExprRef E, std::vector<ExprRef> &Vars);

  Z3Context Z3;
  Z3_fixedpoint Fp = nullptr;
  struct Relation {
    std::string Name;
    unsigned Arity = 0;
    Z3_func_decl Decl = nullptr;
  };
  std::vector<Relation> Relations;
  Stats St;
  std::string Script;
  bool Poisoned = false;
};

const char *toString(FixedpointSolver::Result R);

} // namespace chute

#endif // CHUTE_SMT_FIXEDPOINTSOLVER_H
