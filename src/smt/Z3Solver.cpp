//===- smt/Z3Solver.cpp - Incremental Z3 solver wrapper --------------------===//

#include "smt/Z3Solver.h"

#include "smt/FaultInjection.h"
#include "smt/Z3Translate.h"

using namespace chute;

const char *chute::toString(SatResult R) {
  switch (R) {
  case SatResult::Sat:
    return "sat";
  case SatResult::Unsat:
    return "unsat";
  case SatResult::Unknown:
    return "unknown";
  }
  return "?";
}

Z3Solver::Z3Solver(Z3Context &Z3, unsigned TimeoutMs, unsigned Seed)
    : Z3(Z3) {
  Z3_context C = Z3.raw();
  Solver = Z3_mk_solver(C);
  Z3_solver_inc_ref(C, Solver);
  if (TimeoutMs != 0 || Seed != 0) {
    Z3_params Params = Z3_mk_params(C);
    Z3_params_inc_ref(C, Params);
    if (TimeoutMs != 0) {
      Z3_symbol Timeout = Z3_mk_string_symbol(C, "timeout");
      Z3_params_set_uint(C, Params, Timeout, TimeoutMs);
    }
    if (Seed != 0) {
      Z3_symbol RandomSeed = Z3_mk_string_symbol(C, "random_seed");
      Z3_params_set_uint(C, Params, RandomSeed, Seed);
    }
    Z3_solver_set_params(C, Solver, Params);
    Z3_params_dec_ref(C, Params);
  }
}

Z3Solver::~Z3Solver() {
  if (Solver != nullptr)
    Z3_solver_dec_ref(Z3.raw(), Solver);
}

void Z3Solver::add(ExprRef E) { addRaw(toZ3(Z3, E)); }

void Z3Solver::addRaw(Z3_ast A) {
  Z3_solver_assert(Z3.raw(), Solver, A);
}

void Z3Solver::push() { Z3_solver_push(Z3.raw(), Solver); }

void Z3Solver::pop() { Z3_solver_pop(Z3.raw(), Solver, 1); }

SatResult Z3Solver::check() {
  if (smtFaultShouldInjectUnknown())
    return SatResult::Unknown;
  Z3.clearError();
  switch (Z3_solver_check(Z3.raw(), Solver)) {
  case Z3_L_TRUE:
    return SatResult::Sat;
  case Z3_L_FALSE:
    return SatResult::Unsat;
  default:
    return SatResult::Unknown;
  }
}

std::optional<Model> Z3Solver::getModel(const std::vector<ExprRef> &Vars) {
  Z3_context C = Z3.raw();
  Z3_model M = Z3_solver_get_model(C, Solver);
  if (M == nullptr || Z3.hasError()) {
    Z3.clearError();
    return std::nullopt;
  }
  Z3_model_inc_ref(C, M);
  Model Result;
  for (ExprRef V : Vars) {
    assert(V->isVar() && "model extraction needs variables");
    Z3_ast Const = toZ3(Z3, V);
    Z3_ast Value = nullptr;
    if (!Z3_model_eval(C, M, Const, /*model_completion=*/true, &Value) ||
        Value == nullptr)
      continue;
    std::int64_t IV = 0;
    if (Z3_get_ast_kind(C, Value) == Z3_NUMERAL_AST &&
        Z3_get_numeral_int64(C, Value, &IV))
      Result.set(V->varName(), IV);
  }
  Z3_model_dec_ref(C, M);
  return Result;
}
