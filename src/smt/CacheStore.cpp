//===- smt/CacheStore.cpp - Sharded slab store for durable verdicts --------===//

#include "smt/CacheStore.h"

#include "expr/Expr.h"
#include "obs/Trace.h"
#include "smt/CacheFormat.h"
#include "support/Debug.h"
#include "support/FileUtil.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <sstream>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace chute;

namespace {

/// Bumped whenever the slab layout or record framing changes; a
/// mismatch rejects the slab wholesale (no migration — it is only a
/// cache).
constexpr unsigned SlabSchemaVersion = 1;

/// Records larger than this are rejected as framing garbage long
/// before any allocation happens.
constexpr std::uint64_t MaxPayloadBytes = 1u << 24;

/// A frame line never legitimately exceeds this (fixed tokens plus
/// two 16-digit hashes and a length).
constexpr std::size_t MaxFrameLine = 160;

std::string lockPath(const std::string &Dir, unsigned Shard) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "%02u", Shard);
  return Dir + "/slab-" + Buf + ".lock";
}

std::uint64_t fileSize(const std::string &Path, bool &Exists) {
  struct stat Sb;
  if (::stat(Path.c_str(), &Sb) != 0 || !S_ISREG(Sb.st_mode)) {
    Exists = false;
    return 0;
  }
  Exists = true;
  return static_cast<std::uint64_t>(Sb.st_size);
}

struct Frame {
  char Kind = 'S';
  std::uint64_t KeyHash = 0;
  std::uint64_t Len = 0;
  std::uint64_t PayloadHash = 0;
  std::size_t LineLen = 0; ///< frame line bytes, newline included
};

/// Parses the frame line starting at \p Pos. Strict: any deviation
/// fails (the caller then decides torn-tail vs corrupt-record).
bool parseFrame(const std::string &Text, std::size_t Pos, Frame &Out) {
  std::size_t Window = std::min(Text.size(), Pos + MaxFrameLine);
  std::size_t Nl = Text.find('\n', Pos);
  if (Nl == std::string::npos || Nl >= Window)
    return false;
  std::istringstream Ts(Text.substr(Pos, Nl - Pos));
  std::string Tag, KindTok;
  std::uint64_t Len = 0;
  if (!(Ts >> Tag) || Tag != "R" || !(Ts >> KindTok) ||
      KindTok.size() != 1 ||
      (KindTok[0] != 'S' && KindTok[0] != 'Q' && KindTok[0] != 'C'))
    return false;
  if (!(Ts >> std::hex >> Out.KeyHash >> std::dec >> Len >> std::hex >>
        Out.PayloadHash))
    return false;
  std::string Rest;
  if (Ts >> Rest)
    return false;
  if (Len == 0 || Len > MaxPayloadBytes)
    return false;
  Out.Kind = KindTok[0];
  Out.Len = Len;
  Out.LineLen = Nl - Pos + 1;
  return true;
}

std::string frameLine(char Kind, std::uint64_t KeyHash,
                      std::uint64_t Len, std::uint64_t PayloadHash) {
  std::ostringstream Os;
  Os << "R " << Kind << ' ' << std::hex << KeyHash << std::dec << ' '
     << Len << ' ' << std::hex << PayloadHash << '\n';
  return Os.str();
}

/// Whole-file write at an explicit offset (the caller holds the slab
/// lock and has already healed the tail).
bool pwriteAll(int Fd, const std::string &Buf, std::uint64_t Offset) {
  const char *P = Buf.data();
  std::size_t Left = Buf.size();
  while (Left > 0) {
    ssize_t N = ::pwrite(Fd, P, Left, static_cast<off_t>(Offset));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Offset += static_cast<std::uint64_t>(N);
    Left -= static_cast<std::size_t>(N);
  }
  return true;
}

/// Process-wide registry: one store instance per directory, so the
/// daemon's program registry and any number of concurrent sessions
/// share a single index (and a single compactor).
std::mutex RegistryMu;
std::unordered_map<std::string, std::weak_ptr<CacheStore>> &registry() {
  static auto *R =
      new std::unordered_map<std::string, std::weak_ptr<CacheStore>>();
  return *R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Construction / registry
//===----------------------------------------------------------------------===//

std::string CacheStore::slabPath(const std::string &Dir, unsigned Shard) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "%02u", Shard);
  return Dir + "/slab-" + Buf + ".chute";
}

std::shared_ptr<CacheStore> CacheStore::open(const std::string &Dir,
                                             const Options &O) {
  std::lock_guard<std::mutex> Lock(RegistryMu);
  auto &Slot = registry()[Dir];
  if (auto Existing = Slot.lock())
    return Existing;
  std::shared_ptr<CacheStore> S(new CacheStore(Dir, O));
  Slot = S;
  return S;
}

CacheStore::CacheStore(std::string Dir, const Options &O)
    : Directory(std::move(Dir)), Opts(O) {
  Slabs.resize(Opts.Shards);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    refreshLocked();
    migrateLegacyLocked();
  }
  if (Opts.BackgroundCompaction)
    Compactor = std::thread([this] {
      std::unique_lock<std::mutex> Lock(Mu);
      while (!ShuttingDown) {
        CompactCv.wait(Lock, [this] {
          return ShuttingDown || !CompactQueue.empty();
        });
        while (!CompactQueue.empty() && !ShuttingDown) {
          unsigned Shard = CompactQueue.back();
          CompactQueue.pop_back();
          compactSlabLocked(Shard);
        }
      }
    });
}

CacheStore::~CacheStore() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown = true;
  }
  CompactCv.notify_all();
  if (Compactor.joinable())
    Compactor.join();
}

CacheStoreStats CacheStore::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return St;
}

std::uint64_t CacheStore::liveRecords() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Index.size();
}

std::uint64_t CacheStore::indexKey(char Kind,
                                   std::uint64_t KeyHash) const {
  unsigned K = Kind == 'S' ? 1 : Kind == 'Q' ? 2 : 3;
  return KeyHash ^ (0x9e3779b97f4a7c15ULL * K);
}

std::string CacheStore::headerLine(unsigned Shard,
                                   std::uint64_t Gen) const {
  std::ostringstream Os;
  Os << "CHUTE-SLAB " << SlabSchemaVersion << ' '
     << cachefmt::z3VersionString() << ' ' << Shard << ' '
     << Opts.Shards << ' ' << Gen << '\n';
  return Os.str();
}

bool CacheStore::parseHeader(const std::string &Line, unsigned Shard,
                             std::uint64_t &Gen) const {
  std::istringstream Ts(Line);
  std::string Magic, Z3;
  unsigned Schema = 0, HdrShard = 0, HdrShards = 0;
  if (!(Ts >> Magic >> Schema >> Z3 >> HdrShard >> HdrShards >> Gen))
    return false;
  std::string Rest;
  if (Ts >> Rest)
    return false;
  return Magic == "CHUTE-SLAB" && Schema == SlabSchemaVersion &&
         Z3 == cachefmt::z3VersionString() && HdrShard == Shard &&
         HdrShards == Opts.Shards;
}

//===----------------------------------------------------------------------===//
// Index rebuild (scan)
//===----------------------------------------------------------------------===//

void CacheStore::dropSlabFromIndex(unsigned Shard) {
  for (auto It = Index.begin(); It != Index.end();) {
    if (It->second.Shard == Shard)
      It = Index.erase(It);
    else
      ++It;
  }
  Slabs[Shard].DeadBytes = 0;
}

void CacheStore::scanSlabLocked(unsigned Shard) {
  const std::string Path = slabPath(Directory, Shard);
  SlabState &S = Slabs[Shard];

  bool Exists = false;
  std::uint64_t Size = fileSize(Path, Exists);
  if (!Exists) {
    if (S.KnownSize != 0 || S.ScannedOffset != 0)
      dropSlabFromIndex(Shard);
    S = SlabState{};
    return;
  }
  // Fast path: nothing changed since the last scan. (A compaction by
  // another process that lands on the exact same size is caught by
  // the payload checksums at read time, which force a rescan.)
  if (Size == S.KnownSize && !S.Invalid && Size != 0)
    return;
  if (S.Invalid && Size == S.KnownSize)
    return; // still the same damaged file

  auto Text = readFile(Path);
  if (!Text) {
    dropSlabFromIndex(Shard);
    S = SlabState{};
    return;
  }

  // Header.
  std::size_t HdrNl = Text->find('\n');
  std::uint64_t Gen = 0;
  if (HdrNl == std::string::npos ||
      !parseHeader(Text->substr(0, HdrNl), Shard, Gen)) {
    if (!S.Invalid) {
      ++St.SlabsRejected;
      obs::bump(obs::Counter::SmtDiskRejects);
      CHUTE_DEBUG(debugLine("CacheStore: rejecting slab " + Path +
                            " (bad header)"));
    }
    dropSlabFromIndex(Shard);
    S = SlabState{};
    S.Invalid = true;
    S.KnownSize = Size;
    return;
  }

  std::size_t Start;
  if (S.Invalid || Gen != S.Generation || Size < S.ScannedOffset ||
      S.ScannedOffset <= HdrNl) {
    // Full rescan: the file was rewritten (compaction bumps the
    // generation), healed, or never scanned.
    dropSlabFromIndex(Shard);
    Start = HdrNl + 1;
  } else {
    Start = static_cast<std::size_t>(S.ScannedOffset);
  }

  std::size_t Pos = Start;
  std::size_t GoodEnd = Start;
  bool Torn = false;
  while (Pos < Text->size()) {
    Frame F;
    if (!parseFrame(*Text, Pos, F)) {
      Torn = true;
      break;
    }
    std::size_t PayloadStart = Pos + F.LineLen;
    std::size_t PayloadEnd = PayloadStart + F.Len;
    if (PayloadEnd > Text->size()) {
      Torn = true;
      break;
    }
    std::string Payload = Text->substr(PayloadStart, F.Len);
    std::uint32_t Total = static_cast<std::uint32_t>(F.LineLen + F.Len);
    if (cachefmt::fnv1a(Payload) != F.PayloadHash) {
      // A checksum failure that reaches the end of the file is a torn
      // tail (crash mid-append). Mid-slab, with an intact successor
      // frame, it is isolated bit rot: skip just this record.
      Frame Next;
      if (PayloadEnd == Text->size() ||
          !parseFrame(*Text, PayloadEnd, Next)) {
        Torn = true;
        break;
      }
      ++St.CorruptRecordsSkipped;
      obs::bump(obs::Counter::SmtDiskRejects);
      S.DeadBytes += Total;
      Pos = PayloadEnd;
      GoodEnd = Pos;
      continue;
    }
    std::uint64_t Key = indexKey(F.Kind, F.KeyHash);
    auto It = Index.find(Key);
    if (It != Index.end()) {
      // Superseded (or duplicated) on disk: the older bytes are
      // garbage for compaction to reclaim.
      Slabs[It->second.Shard].DeadBytes += It->second.Total;
      It->second = IndexEntry{F.KeyHash,
                              F.PayloadHash,
                              PayloadStart,
                              static_cast<std::uint32_t>(F.Len),
                              Total,
                              static_cast<std::uint16_t>(Shard),
                              F.Kind};
    } else {
      Index.emplace(Key, IndexEntry{F.KeyHash, F.PayloadHash,
                                    PayloadStart,
                                    static_cast<std::uint32_t>(F.Len),
                                    Total,
                                    static_cast<std::uint16_t>(Shard),
                                    F.Kind});
    }
    ++St.RecordsIndexed;
    obs::bump(obs::Counter::SmtDiskIndexed);
    Pos = PayloadEnd;
    GoodEnd = Pos;
  }

  if (Torn && GoodEnd < Text->size()) {
    ++St.TornTailsTruncated;
    obs::bump(obs::Counter::SmtDiskTorn);
    CHUTE_DEBUG(debugLine(
        "CacheStore: torn tail in " + Path + " at offset " +
        std::to_string(GoodEnd) + " (" +
        std::to_string(Text->size() - GoodEnd) + " bytes dropped)"));
  }
  S.ScannedOffset = GoodEnd;
  S.KnownSize = Size;
  S.Generation = Gen;
  S.Invalid = false;
  ++St.SlabsScanned;
}

void CacheStore::refreshLocked() {
  struct stat Sb;
  if (::stat(Directory.c_str(), &Sb) != 0 || !S_ISDIR(Sb.st_mode)) {
    // Cold directory: nothing to scan, and no lock files to create.
    for (unsigned Shard = 0; Shard < Opts.Shards; ++Shard) {
      if (Slabs[Shard].KnownSize != 0 || Slabs[Shard].ScannedOffset != 0)
        dropSlabFromIndex(Shard);
      Slabs[Shard] = SlabState{};
    }
    return;
  }
  for (unsigned Shard = 0; Shard < Opts.Shards; ++Shard) {
    FileLock Lock(lockPath(Directory, Shard), FileLock::Mode::Shared);
    if (!Lock.held())
      ++St.LockFailures;
    scanSlabLocked(Shard);
  }
}

//===----------------------------------------------------------------------===//
// Append
//===----------------------------------------------------------------------===//

bool CacheStore::appendToShard(unsigned Shard, std::vector<Pending> &Batch,
                               AppendResult &Out) {
  const std::string Path = slabPath(Directory, Shard);
  FileLock Lock(lockPath(Directory, Shard), FileLock::Mode::Exclusive);
  if (!Lock.held())
    ++St.LockFailures;

  // Re-scan under the exclusive lock: another process may have
  // appended (or compacted) since our refresh, and its entries must
  // both survive and participate in dedup.
  scanSlabLocked(Shard);
  SlabState &S = Slabs[Shard];

  // Re-dedup the batch against the refreshed index.
  std::vector<Pending> Fresh;
  Fresh.reserve(Batch.size());
  for (auto &P : Batch) {
    auto It = Index.find(indexKey(P.Kind, P.KeyHash));
    if (It != Index.end() && It->second.PayloadHash == P.PayloadHash) {
      ++Out.Duplicates;
      ++St.DuplicatesSkipped;
      continue;
    }
    Fresh.push_back(std::move(P));
  }
  if (Fresh.empty())
    return true;

  int Fd = ::open(Path.c_str(), O_RDWR | O_CREAT, 0644);
  if (Fd < 0)
    return false;

  // Heal before appending: a torn tail is physically truncated, an
  // invalid or fresh slab gets a new header (generation bumped so
  // other processes drop their stale view and rescan).
  std::uint64_t Base;
  std::string Buf;
  bool FreshFile = false;
  if (S.Invalid || S.KnownSize == 0) {
    std::uint64_t Gen = S.Generation + 1;
    if (::ftruncate(Fd, 0) != 0) {
      ::close(Fd);
      return false;
    }
    Buf = headerLine(Shard, Gen);
    Base = 0;
    dropSlabFromIndex(Shard);
    S = SlabState{};
    S.Generation = Gen;
    S.ScannedOffset = Buf.size(); // set properly below
    FreshFile = true;
  } else {
    if (S.ScannedOffset < S.KnownSize &&
        ::ftruncate(Fd, static_cast<off_t>(S.ScannedOffset)) != 0) {
      ::close(Fd);
      return false;
    }
    Base = S.ScannedOffset;
  }

  struct PlacedRec {
    std::uint64_t Key;
    IndexEntry E;
    char Kind;
  };
  std::vector<PlacedRec> PlacedRecs;
  PlacedRecs.reserve(Fresh.size());
  for (auto &P : Fresh) {
    std::string Line =
        frameLine(P.Kind, P.KeyHash, P.Payload.size(), P.PayloadHash);
    std::uint64_t PayloadOff = Base + Buf.size() + Line.size();
    PlacedRecs.push_back(
        {indexKey(P.Kind, P.KeyHash),
         IndexEntry{P.KeyHash, P.PayloadHash, PayloadOff,
                    static_cast<std::uint32_t>(P.Payload.size()),
                    static_cast<std::uint32_t>(Line.size() +
                                               P.Payload.size()),
                    static_cast<std::uint16_t>(Shard), P.Kind},
         P.Kind});
    Buf += Line;
    Buf += P.Payload;
  }

  bool Ok = pwriteAll(Fd, Buf, Base) && ::fsync(Fd) == 0;
  ::close(Fd);
  if (FreshFile)
    fsyncDir(Directory);
  if (!Ok) {
    // The write may have partially landed; rescan so the index only
    // reflects what is actually durable (the torn tail logic drops
    // the rest).
    S.KnownSize = 0; // force the rescan past the fast path
    scanSlabLocked(Shard);
    return false;
  }

  for (auto &P : PlacedRecs) {
    auto It = Index.find(P.Key);
    if (It != Index.end()) {
      Slabs[It->second.Shard].DeadBytes += It->second.Total;
      It->second = P.E;
    } else {
      Index.emplace(P.Key, P.E);
    }
    ++St.RecordsAppended;
    obs::bump(obs::Counter::SmtDiskAppended);
    switch (P.Kind) {
    case 'S':
      ++Out.Sat;
      break;
    case 'Q':
      ++Out.Qe;
      break;
    default:
      ++Out.Cores;
      break;
    }
  }
  S.ScannedOffset = Base + Buf.size();
  S.KnownSize = S.ScannedOffset;
  maybeScheduleCompaction(Shard);
  return true;
}

std::size_t CacheStore::stageSnapshotLocked(
    const CacheSnapshot &S, std::vector<std::vector<Pending>> &ByShard,
    AppendResult &Out) {
  std::vector<Pending> Staged;

  // Stage every entry as a self-contained one-record body keyed by
  // the structural hash of its subject expression(s).
  for (const auto &Rec : S.Sat) {
    if (!Rec.E || Rec.R == SatResult::Unknown)
      continue;
    std::string Key = cachefmt::exprText(Rec.E);
    if (Key.empty())
      continue;
    CacheSnapshot One;
    One.Sat.push_back(Rec);
    std::string Payload = cachefmt::serializeBody(One);
    Staged.push_back({'S', cachefmt::fnv1a(Key), cachefmt::fnv1a(Payload),
                      std::move(Payload)});
  }
  for (const auto &Rec : S.Qe) {
    if (!Rec.In || !Rec.Out)
      continue;
    std::string Key = cachefmt::exprText(Rec.In);
    if (Key.empty() || cachefmt::exprText(Rec.Out).empty())
      continue;
    CacheSnapshot One;
    One.Qe.push_back(Rec);
    std::string Payload = cachefmt::serializeBody(One);
    Staged.push_back({'Q', cachefmt::fnv1a(Key), cachefmt::fnv1a(Payload),
                      std::move(Payload)});
  }
  for (const auto &Core : S.Cores) {
    if (Core.empty())
      continue;
    // Canonical core identity: conjuncts sorted by their structural
    // text, so the same core discovered by two processes dedupes.
    std::vector<std::pair<std::string, ExprRef>> Parts;
    bool Serialisable = true;
    for (const auto &E : Core) {
      std::string T = E ? cachefmt::exprText(E) : std::string();
      if (T.empty()) {
        Serialisable = false;
        break;
      }
      Parts.emplace_back(std::move(T), E);
    }
    if (!Serialisable)
      continue;
    std::sort(Parts.begin(), Parts.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    std::string Key;
    std::vector<ExprRef> Sorted;
    Sorted.reserve(Parts.size());
    for (auto &P : Parts) {
      Key += P.first;
      Key += '\x1f';
      Sorted.push_back(P.second);
    }
    CacheSnapshot One;
    One.Cores.push_back(std::move(Sorted));
    std::string Payload = cachefmt::serializeBody(One);
    Staged.push_back({'C', cachefmt::fnv1a(Key), cachefmt::fnv1a(Payload),
                      std::move(Payload)});
  }

  // Dedup against the current index (cheap, no slab locks);
  // appendToShard re-checks under the exclusive lock.
  std::size_t NPlaced = 0;
  for (auto &P : Staged) {
    auto It = Index.find(indexKey(P.Kind, P.KeyHash));
    if (It != Index.end() && It->second.PayloadHash == P.PayloadHash) {
      ++Out.Duplicates;
      ++St.DuplicatesSkipped;
      continue;
    }
    ByShard[P.KeyHash % Opts.Shards].push_back(std::move(P));
    ++NPlaced;
  }
  return NPlaced;
}

CacheStore::AppendResult CacheStore::append(const CacheSnapshot &S) {
  AppendResult Out;
  std::lock_guard<std::mutex> Lock(Mu);
  refreshLocked();
  std::vector<std::vector<Pending>> ByShard(Opts.Shards);
  if (stageSnapshotLocked(S, ByShard, Out) == 0) {
    Out.Ok = true; // nothing new to write is not a failure
    return Out;
  }
  if (!ensureDir(Directory))
    return Out;

  bool AllOk = true;
  bool Wrote = false;
  for (unsigned Shard = 0; Shard < Opts.Shards; ++Shard) {
    if (ByShard[Shard].empty())
      continue;
    if (!appendToShard(Shard, ByShard[Shard], Out))
      AllOk = false;
    else
      Wrote = true;
  }
  if (Wrote && (Out.Sat + Out.Qe + Out.Cores) > 0)
    ++St.AppendBatches;
  Out.Ok = AllOk;
  return Out;
}

//===----------------------------------------------------------------------===//
// Warm start
//===----------------------------------------------------------------------===//

CacheStore::WarmResult CacheStore::warmStart(ExprContext &Ctx,
                                             QueryCache &Cache) {
  std::lock_guard<std::mutex> Lock(Mu);
  WarmResult R;
  refreshLocked();
  if (Index.empty())
    return R;

  CacheSnapshot All;
  for (unsigned Shard = 0; Shard < Opts.Shards; ++Shard) {
    // Collect this shard's live entries before touching the file so
    // erasures during validation do not invalidate iteration.
    std::vector<std::pair<std::uint64_t, IndexEntry>> Entries;
    for (const auto &KV : Index)
      if (KV.second.Shard == Shard)
        Entries.push_back(KV);
    if (Entries.empty())
      continue;

    const std::string Path = slabPath(Directory, Shard);
    FileLock SlabLock(lockPath(Directory, Shard), FileLock::Mode::Shared);
    if (!SlabLock.held())
      ++St.LockFailures;
    auto Text = readFile(Path);

    auto extract = [&](const IndexEntry &E, CacheSnapshot &Rec) {
      if (!Text || E.Offset + E.Len > Text->size())
        return false;
      std::string Payload = Text->substr(E.Offset, E.Len);
      if (cachefmt::fnv1a(Payload) != E.PayloadHash)
        return false;
      return cachefmt::parseBody(Payload, Ctx, Rec);
    };

    bool Retried = false;
    for (std::size_t I = 0; I < Entries.size(); ++I) {
      CacheSnapshot Rec;
      if (!extract(Entries[I].second, Rec)) {
        if (!Retried) {
          // The slab may have been compacted by another process
          // since our scan: rescan once and retry every entry of
          // this shard against the fresh layout.
          Retried = true;
          Slabs[Shard].KnownSize = 0; // defeat the fast path
          scanSlabLocked(Shard);
          Text = readFile(Path);
          Entries.clear();
          for (const auto &KV : Index)
            if (KV.second.Shard == Shard)
              Entries.push_back(KV);
          I = static_cast<std::size_t>(-1);
          continue;
        }
        // Persistent failure: the record is unusable. Drop it from
        // the index (dead bytes for compaction) — a corrupt record
        // costs time, never a verdict.
        ++R.Rejects;
        ++St.CorruptRecordsSkipped;
        obs::bump(obs::Counter::SmtDiskRejects);
        Slabs[Shard].DeadBytes += Entries[I].second.Total;
        Index.erase(Entries[I].first);
        continue;
      }
      for (auto &SatRec : Rec.Sat)
        All.Sat.push_back(SatRec);
      for (auto &QeRec : Rec.Qe)
        All.Qe.push_back(QeRec);
      for (auto &Core : Rec.Cores)
        All.Cores.push_back(std::move(Core));
    }
    maybeScheduleCompaction(Shard);
  }

  R.Sat = All.Sat.size();
  R.Qe = All.Qe.size();
  R.Cores = All.Cores.size();
  if (R.total() > 0)
    Cache.importWarm(All);
  return R;
}

//===----------------------------------------------------------------------===//
// Compaction
//===----------------------------------------------------------------------===//

void CacheStore::maybeScheduleCompaction(unsigned Shard) {
  const SlabState &S = Slabs[Shard];
  if (S.KnownSize < Opts.CompactMinBytes)
    return;
  // Torn-tail bytes beyond the validated prefix are garbage too: a
  // compaction rewrite drops them just like superseded records.
  std::uint64_t Garbage =
      S.DeadBytes + (S.KnownSize > S.ScannedOffset
                         ? S.KnownSize - S.ScannedOffset
                         : 0);
  if (static_cast<double>(Garbage) <
      Opts.CompactDeadRatio * static_cast<double>(S.KnownSize))
    return;
  if (!Opts.BackgroundCompaction)
    return; // the owner drives compactNow() explicitly
  if (std::find(CompactQueue.begin(), CompactQueue.end(), Shard) ==
      CompactQueue.end()) {
    CompactQueue.push_back(Shard);
    CompactCv.notify_one();
  }
}

void CacheStore::compactSlabLocked(unsigned Shard) {
  const std::string Path = slabPath(Directory, Shard);
  FileLock Lock(lockPath(Directory, Shard), FileLock::Mode::Exclusive);
  if (!Lock.held())
    ++St.LockFailures;
  scanSlabLocked(Shard);
  SlabState &S = Slabs[Shard];

  bool Exists = false;
  std::uint64_t OldSize = fileSize(Path, Exists);
  if (!Exists)
    return;

  std::vector<std::pair<std::uint64_t, IndexEntry>> Entries;
  for (const auto &KV : Index)
    if (KV.second.Shard == Shard)
      Entries.push_back(KV);
  std::sort(Entries.begin(), Entries.end(),
            [](const auto &A, const auto &B) {
              return A.second.Offset < B.second.Offset;
            });

  auto Text = readFile(Path);
  std::uint64_t Gen = S.Generation + 1;
  std::string Buf = headerLine(Shard, Gen);
  struct Moved {
    std::uint64_t Key;
    IndexEntry E;
  };
  std::vector<Moved> Live;
  Live.reserve(Entries.size());
  for (auto &KV : Entries) {
    IndexEntry E = KV.second;
    if (!Text || E.Offset + E.Len > Text->size())
      continue;
    std::string Payload = Text->substr(E.Offset, E.Len);
    if (cachefmt::fnv1a(Payload) != E.PayloadHash)
      continue; // stale index entry; silently drop
    std::string Line = frameLine(E.Kind, E.KeyHash, E.Len, E.PayloadHash);
    E.Offset = Buf.size() + Line.size();
    Buf += Line;
    Buf += Payload;
    Live.push_back({KV.first, E});
  }

  if (!atomicWriteFile(Path, Buf))
    return;

  // Entries that failed re-validation disappear with the rewrite.
  for (auto &KV : Entries)
    Index.erase(KV.first);
  for (auto &M : Live)
    Index.emplace(M.Key, M.E);
  S.ScannedOffset = Buf.size();
  S.KnownSize = Buf.size();
  S.Generation = Gen;
  S.DeadBytes = 0;
  S.Invalid = false;
  ++St.Compactions;
  if (OldSize > Buf.size())
    St.CompactedBytes += OldSize - Buf.size();
  obs::bump(obs::Counter::SmtDiskCompactions);
  CHUTE_DEBUG(debugLine("CacheStore: compacted " + Path + " " +
                        std::to_string(OldSize) + " -> " +
                        std::to_string(Buf.size()) + " bytes, gen " +
                        std::to_string(Gen)));
}

void CacheStore::compactNow(bool Force) {
  std::lock_guard<std::mutex> Lock(Mu);
  refreshLocked();
  for (unsigned Shard = 0; Shard < Opts.Shards; ++Shard) {
    const SlabState &S = Slabs[Shard];
    std::uint64_t Garbage =
        S.DeadBytes + (S.KnownSize > S.ScannedOffset
                           ? S.KnownSize - S.ScannedOffset
                           : 0);
    bool Due = Force ? (Garbage > 0 || S.Invalid)
                     : (S.KnownSize >= Opts.CompactMinBytes &&
                        static_cast<double>(Garbage) >=
                            Opts.CompactDeadRatio *
                                static_cast<double>(S.KnownSize));
    if (Due)
      compactSlabLocked(Shard);
  }
}

//===----------------------------------------------------------------------===//
// Legacy migration
//===----------------------------------------------------------------------===//

void CacheStore::migrateLegacyLocked() {
  DIR *D = ::opendir(Directory.c_str());
  if (D == nullptr)
    return;
  std::vector<std::string> Files, Locks;
  while (struct dirent *Ent = ::readdir(D)) {
    std::string Name = Ent->d_name;
    if (Name.rfind("qc-", 0) != 0)
      continue;
    if (Name.size() > 6 && Name.compare(Name.size() - 6, 6, ".chute") == 0)
      Files.push_back(Name);
    else if (Name.size() > 5 && Name.compare(Name.size() - 5, 5, ".lock") == 0)
      Locks.push_back(Name);
  }
  ::closedir(D);
  if (Files.empty() && Locks.empty())
    return;

  std::sort(Files.begin(), Files.end());
  for (const auto &Name : Files) {
    const std::string Path = Directory + "/" + Name;
    auto Text = readFile(Path);
    bool Imported = false;
    if (Text) {
      // Legacy header: CHUTE-QC <schema> <z3-version>\n<body>
      std::size_t Nl = Text->find('\n');
      if (Nl != std::string::npos) {
        std::istringstream Hs(Text->substr(0, Nl));
        std::string Magic, Z3;
        unsigned Schema = 0;
        std::string Rest;
        if ((Hs >> Magic >> Schema >> Z3) && !(Hs >> Rest) &&
            Magic == "CHUTE-QC" && Schema == 1 &&
            Z3 == cachefmt::z3VersionString()) {
          ExprContext Ctx;
          CacheSnapshot Snap;
          if (cachefmt::parseBody(Text->substr(Nl + 1), Ctx, Snap)) {
            // Stage through the normal append machinery so entries
            // migrated from sibling files dedup against each other.
            AppendResult AR;
            std::vector<std::vector<Pending>> ByShard(Opts.Shards);
            stageSnapshotLocked(Snap, ByShard, AR);
            bool Ok = true;
            for (unsigned Shard = 0; Shard < Opts.Shards; ++Shard)
              if (!ByShard[Shard].empty() &&
                  !appendToShard(Shard, ByShard[Shard], AR))
                Ok = false;
            if (Ok) {
              Imported = true;
              ++St.LegacyImported;
              CHUTE_DEBUG(debugLine("CacheStore: migrated legacy " + Path));
            }
          }
        }
      }
    }
    if (!Imported) {
      ++St.LegacyInvalidated;
      obs::bump(obs::Counter::SmtDiskRejects);
      CHUTE_DEBUG(debugLine("CacheStore: invalidated legacy " + Path));
    }
    ::unlink(Path.c_str());
  }
  for (const auto &Name : Locks)
    ::unlink((Directory + "/" + Name).c_str());
  fsyncDir(Directory);
}
