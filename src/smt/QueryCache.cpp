//===- smt/QueryCache.cpp - Content-addressed SMT result cache -------------===//

#include "smt/QueryCache.h"

#include "obs/Trace.h"

#include <algorithm>
#include <cassert>

using namespace chute;

QueryCache::QueryCache(std::size_t Capacity) : Cap(Capacity) {}

std::size_t QueryCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Lru.size();
}

QueryCacheStats QueryCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return St;
}

void QueryCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Lru.clear();
  Buckets.clear();
  Cores.clear();
}

QueryCache::Entry *QueryCache::find(std::size_t H, EntryKind K,
                                    ExprRef Key) {
  auto BucketIt = Buckets.find(H);
  if (BucketIt == Buckets.end())
    return nullptr;
  for (LruList::iterator It : BucketIt->second) {
    if (It->Kind != K || It->Key != Key)
      continue; // same hash, different formula or kind: not a hit
    if (It->Epoch != 0 && It->Epoch < MinIncEpoch) {
      // Retired incremental generation: the verdict came from a
      // session that later hit a Z3 error, so it cannot be trusted.
      // Dropped lazily here rather than swept eagerly on retire.
      erase(It);
      ++St.Retired;
      return nullptr;
    }
    // Refresh: splice to the front of the LRU list. Iterators stay
    // valid across splice, so the bucket needs no update.
    Lru.splice(Lru.begin(), Lru, It);
    return &*It;
  }
  return nullptr;
}

void QueryCache::erase(LruList::iterator It) {
  auto BucketIt = Buckets.find(It->Hash);
  assert(BucketIt != Buckets.end());
  auto &Vec = BucketIt->second;
  Vec.erase(std::remove(Vec.begin(), Vec.end(), It), Vec.end());
  if (Vec.empty())
    Buckets.erase(BucketIt);
  Lru.erase(It);
}

void QueryCache::evictOne() {
  assert(!Lru.empty());
  erase(std::prev(Lru.end()));
  ++St.Evictions;
}

void QueryCache::insert(std::size_t H, EntryKind K, ExprRef Key,
                        SatResult R, ExprRef QeOut,
                        std::uint32_t Epoch, bool Warm) {
  if (Cap == 0)
    return;
  if (Entry *Existing = find(H, K, Key)) {
    Existing->Verdict = R;
    Existing->QeOut = QeOut;
    Existing->Epoch = Epoch;
    Existing->Warm = Warm;
    return;
  }
  while (Lru.size() >= Cap)
    evictOne();
  Lru.push_front(Entry{H, K, Key, R, QeOut, Epoch, Warm});
  Buckets[H].push_back(Lru.begin());
  ++St.Insertions;
}

std::optional<SatResult> QueryCache::lookupSat(ExprRef E) {
  return lookupSatWithHash(E->hash(), E);
}

void QueryCache::storeSat(ExprRef E, SatResult R, std::uint32_t Epoch) {
  storeSatWithHash(E->hash(), E, R, Epoch);
}

std::optional<SatResult> QueryCache::lookupSatWithHash(std::size_t H,
                                                       ExprRef E) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Entry *Found = find(H, EntryKind::Sat, E)) {
    ++St.Hits;
    if (Found->Warm) {
      ++St.WarmHits;
      obs::bump(obs::Counter::SmtDiskWarmHits);
    }
    return Found->Verdict;
  }
  ++St.Misses;
  return std::nullopt;
}

void QueryCache::storeSatWithHash(std::size_t H, ExprRef E, SatResult R,
                                  std::uint32_t Epoch) {
  if (R == SatResult::Unknown)
    return; // transient: must reach the solver again next time
  std::lock_guard<std::mutex> Lock(Mu);
  if (Epoch != 0 && Epoch < MinIncEpoch)
    return; // produced by an already-retired session generation
  insert(H, EntryKind::Sat, E, R, nullptr, Epoch);
}

std::optional<ExprRef> QueryCache::lookupQe(ExprRef E) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Entry *Found = find(E->hash(), EntryKind::Qe, E)) {
    ++St.Hits;
    if (Found->Warm) {
      ++St.WarmHits;
      obs::bump(obs::Counter::SmtDiskWarmHits);
    }
    return Found->QeOut;
  }
  ++St.Misses;
  return std::nullopt;
}

void QueryCache::storeQe(ExprRef E, ExprRef Out) {
  if (Out == nullptr)
    return; // failed eliminations are not memoized
  std::lock_guard<std::mutex> Lock(Mu);
  insert(E->hash(), EntryKind::Qe, E, SatResult::Unknown, Out,
         /*Epoch=*/0);
}

void QueryCache::storeUnsatCore(std::vector<ExprRef> Core,
                                std::uint32_t Epoch) {
  storeCoreImpl(std::move(Core), Epoch, /*Warm=*/false);
}

void QueryCache::storeCoreImpl(std::vector<ExprRef> Core,
                               std::uint32_t Epoch, bool Warm) {
  if (Cap == 0 || Core.empty() || Core.size() > MaxCoreSize)
    return;
  std::sort(Core.begin(), Core.end());
  Core.erase(std::unique(Core.begin(), Core.end()), Core.end());
  std::lock_guard<std::mutex> Lock(Mu);
  if (Epoch != 0 && Epoch < MinIncEpoch)
    return;
  for (const CoreEntry &C : Cores)
    if (C.Conjuncts == Core)
      return; // already recorded
  if (Cores.size() >= CoreCap)
    Cores.pop_back();
  Cores.push_front(CoreEntry{std::move(Core), Epoch, Warm});
  ++St.CoreInserts;
}

bool QueryCache::subsumedUnsat(const std::vector<ExprRef> &Conjuncts) {
  if (Conjuncts.empty())
    return false;
  std::vector<ExprRef> Sorted(Conjuncts);
  std::sort(Sorted.begin(), Sorted.end());
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto It = Cores.begin(); It != Cores.end();) {
    if (It->Epoch != 0 && It->Epoch < MinIncEpoch) {
      It = Cores.erase(It);
      ++St.Retired;
      continue;
    }
    if (It->Conjuncts.size() <= Sorted.size() &&
        std::includes(Sorted.begin(), Sorted.end(),
                      It->Conjuncts.begin(), It->Conjuncts.end())) {
      // Hit: move the core to the front so frequently-useful cores
      // survive the bound longest.
      Cores.splice(Cores.begin(), Cores, It);
      ++St.CoreHits;
      if (It->Warm) {
        ++St.WarmHits;
        obs::bump(obs::Counter::SmtDiskWarmHits);
      }
      return true;
    }
    ++It;
  }
  return false;
}

CacheSnapshot QueryCache::exportAll() const {
  CacheSnapshot S;
  std::lock_guard<std::mutex> Lock(Mu);
  for (const Entry &E : Lru) {
    if (E.Epoch != 0 && E.Epoch < MinIncEpoch)
      continue; // retired generation: never persist a suspect verdict
    if (E.Kind == EntryKind::Sat) {
      if (E.Verdict != SatResult::Unknown)
        S.Sat.push_back({E.Key, E.Verdict});
    } else if (E.QeOut != nullptr) {
      S.Qe.push_back({E.Key, E.QeOut});
    }
  }
  for (const CoreEntry &C : Cores)
    if (C.Epoch == 0 || C.Epoch >= MinIncEpoch)
      S.Cores.push_back(C.Conjuncts);
  return S;
}

void QueryCache::importWarm(const CacheSnapshot &S) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (const CacheSnapshot::SatRecord &R : S.Sat) {
      if (R.E == nullptr || R.R == SatResult::Unknown)
        continue;
      if (find(R.E->hash(), EntryKind::Sat, R.E) != nullptr)
        continue; // this run already knows the verdict
      insert(R.E->hash(), EntryKind::Sat, R.E, R.R, nullptr,
             /*Epoch=*/0, /*Warm=*/true);
      ++St.WarmLoaded;
    }
    for (const CacheSnapshot::QeRecord &R : S.Qe) {
      if (R.In == nullptr || R.Out == nullptr)
        continue;
      if (find(R.In->hash(), EntryKind::Qe, R.In) != nullptr)
        continue;
      insert(R.In->hash(), EntryKind::Qe, R.In, SatResult::Unknown,
             R.Out, /*Epoch=*/0, /*Warm=*/true);
      ++St.WarmLoaded;
    }
  }
  for (const std::vector<ExprRef> &Core : S.Cores)
    storeCoreImpl(Core, /*Epoch=*/0, /*Warm=*/true);
}

void QueryCache::retireIncrementalBefore(std::uint32_t MinValid) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (MinValid <= MinIncEpoch)
    return;
  MinIncEpoch = MinValid;
  // Cores are few: sweep them eagerly. Verdict entries are dropped
  // lazily on their next lookup instead of walking the whole LRU.
  for (auto It = Cores.begin(); It != Cores.end();) {
    if (It->Epoch != 0 && It->Epoch < MinIncEpoch) {
      It = Cores.erase(It);
      ++St.Retired;
    } else {
      ++It;
    }
  }
}
