//===- smt/QueryCache.cpp - Content-addressed SMT result cache -------------===//

#include "smt/QueryCache.h"

#include <algorithm>
#include <cassert>

using namespace chute;

QueryCache::QueryCache(std::size_t Capacity) : Cap(Capacity) {}

std::size_t QueryCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Lru.size();
}

QueryCacheStats QueryCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return St;
}

void QueryCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Lru.clear();
  Buckets.clear();
}

QueryCache::Entry *QueryCache::find(std::size_t H, EntryKind K,
                                    ExprRef Key) {
  auto BucketIt = Buckets.find(H);
  if (BucketIt == Buckets.end())
    return nullptr;
  for (LruList::iterator It : BucketIt->second) {
    if (It->Kind != K || It->Key != Key)
      continue; // same hash, different formula or kind: not a hit
    // Refresh: splice to the front of the LRU list. Iterators stay
    // valid across splice, so the bucket needs no update.
    Lru.splice(Lru.begin(), Lru, It);
    return &*It;
  }
  return nullptr;
}

void QueryCache::evictOne() {
  assert(!Lru.empty());
  auto Last = std::prev(Lru.end());
  auto BucketIt = Buckets.find(Last->Hash);
  assert(BucketIt != Buckets.end());
  auto &Vec = BucketIt->second;
  Vec.erase(std::remove(Vec.begin(), Vec.end(), Last), Vec.end());
  if (Vec.empty())
    Buckets.erase(BucketIt);
  Lru.erase(Last);
  ++St.Evictions;
}

void QueryCache::insert(std::size_t H, EntryKind K, ExprRef Key,
                        SatResult R, ExprRef QeOut) {
  if (Cap == 0)
    return;
  if (Entry *Existing = find(H, K, Key)) {
    Existing->Verdict = R;
    Existing->QeOut = QeOut;
    return;
  }
  while (Lru.size() >= Cap)
    evictOne();
  Lru.push_front(Entry{H, K, Key, R, QeOut});
  Buckets[H].push_back(Lru.begin());
  ++St.Insertions;
}

std::optional<SatResult> QueryCache::lookupSat(ExprRef E) {
  return lookupSatWithHash(E->hash(), E);
}

void QueryCache::storeSat(ExprRef E, SatResult R) {
  storeSatWithHash(E->hash(), E, R);
}

std::optional<SatResult> QueryCache::lookupSatWithHash(std::size_t H,
                                                       ExprRef E) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Entry *Found = find(H, EntryKind::Sat, E)) {
    ++St.Hits;
    return Found->Verdict;
  }
  ++St.Misses;
  return std::nullopt;
}

void QueryCache::storeSatWithHash(std::size_t H, ExprRef E,
                                  SatResult R) {
  if (R == SatResult::Unknown)
    return; // transient: must reach the solver again next time
  std::lock_guard<std::mutex> Lock(Mu);
  insert(H, EntryKind::Sat, E, R, nullptr);
}

std::optional<ExprRef> QueryCache::lookupQe(ExprRef E) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Entry *Found = find(E->hash(), EntryKind::Qe, E)) {
    ++St.Hits;
    return Found->QeOut;
  }
  ++St.Misses;
  return std::nullopt;
}

void QueryCache::storeQe(ExprRef E, ExprRef Out) {
  if (Out == nullptr)
    return; // failed eliminations are not memoized
  std::lock_guard<std::mutex> Lock(Mu);
  insert(E->hash(), EntryKind::Qe, E, SatResult::Unknown, Out);
}
