//===- smt/SmtLibExport.cpp - SMT-LIB2 rendering -----------------------------===//

#include "smt/SmtLibExport.h"

#include "support/StringExtras.h"

#include <cctype>

using namespace chute;

namespace {

/// Quotes a symbol when it contains characters outside the SMT-LIB
/// simple-symbol alphabet.
std::string symbol(const std::string &Name) {
  bool Simple = !Name.empty() && !std::isdigit(static_cast<unsigned char>(Name[0]));
  for (char C : Name)
    if (!(std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
          C == '-'))
      Simple = false;
  if (Simple)
    return Name;
  return "|" + Name + "|";
}

std::string intLit(std::int64_t V) {
  if (V < 0)
    return "(- " + std::to_string(-V) + ")";
  return std::to_string(V);
}

std::string render(ExprRef E) {
  switch (E->kind()) {
  case ExprKind::IntConst:
    return intLit(E->intValue());
  case ExprKind::Var:
    return symbol(E->varName());
  case ExprKind::Add: {
    std::string S = "(+";
    for (ExprRef Op : E->operands())
      S += " " + render(Op);
    return S + ")";
  }
  case ExprKind::Mul:
    return "(* " + render(E->operand(0)) + " " +
           render(E->operand(1)) + ")";
  case ExprKind::Eq:
    return "(= " + render(E->operand(0)) + " " +
           render(E->operand(1)) + ")";
  case ExprKind::Ne:
    return "(distinct " + render(E->operand(0)) + " " +
           render(E->operand(1)) + ")";
  case ExprKind::Le:
    return "(<= " + render(E->operand(0)) + " " +
           render(E->operand(1)) + ")";
  case ExprKind::Lt:
    return "(< " + render(E->operand(0)) + " " +
           render(E->operand(1)) + ")";
  case ExprKind::Ge:
    return "(>= " + render(E->operand(0)) + " " +
           render(E->operand(1)) + ")";
  case ExprKind::Gt:
    return "(> " + render(E->operand(0)) + " " +
           render(E->operand(1)) + ")";
  case ExprKind::True:
    return "true";
  case ExprKind::False:
    return "false";
  case ExprKind::And: {
    std::string S = "(and";
    for (ExprRef Op : E->operands())
      S += " " + render(Op);
    return S + ")";
  }
  case ExprKind::Or: {
    std::string S = "(or";
    for (ExprRef Op : E->operands())
      S += " " + render(Op);
    return S + ")";
  }
  case ExprKind::Not:
    return "(not " + render(E->operand(0)) + ")";
  case ExprKind::Implies:
    return "(=> " + render(E->operand(0)) + " " +
           render(E->operand(1)) + ")";
  case ExprKind::Exists:
  case ExprKind::Forall: {
    std::string S = E->kind() == ExprKind::Exists ? "(exists (" : "(forall (";
    for (ExprRef B : E->boundVars())
      S += "(" + symbol(B->varName()) + " Int)";
    return S + ") " + render(E->body()) + ")";
  }
  }
  return "true";
}

} // namespace

std::string chute::toSmtLib(ExprRef E) { return render(E); }

std::string chute::toSmtLibQuery(ExprRef E) {
  std::string S = "(set-logic ALL)\n";
  for (ExprRef V : freeVars(E))
    S += "(declare-const " + symbol(V->varName()) + " Int)\n";
  S += "(assert " + render(E) + ")\n";
  S += "(check-sat)\n";
  return S;
}

std::string chute::toSmtLibSymbol(const std::string &Name) {
  return symbol(Name);
}

std::string chute::toSmtLibChcRelation(const std::string &Name,
                                       unsigned Arity) {
  std::string S = "(declare-rel " + symbol(Name) + " (";
  for (unsigned I = 0; I != Arity; ++I)
    S += I == 0 ? "Int" : " Int";
  return S + "))";
}

std::string chute::toSmtLibChcVar(ExprRef Var) {
  return "(declare-var " + symbol(Var->varName()) + " Int)";
}

std::string chute::toSmtLibChcApp(const std::string &Name,
                                  const std::vector<ExprRef> &Args) {
  if (Args.empty())
    return symbol(Name);
  std::string S = "(" + symbol(Name);
  for (ExprRef A : Args)
    S += " " + render(A);
  return S + ")";
}

std::string chute::toSmtLibChcRule(const std::string &Head,
                                   const std::vector<std::string> &BodyApps,
                                   ExprRef Constraint) {
  std::string Body;
  unsigned Parts = static_cast<unsigned>(BodyApps.size()) +
                   (Constraint != nullptr ? 1 : 0);
  if (Parts == 0)
    return "(rule " + Head + ")";
  if (Parts > 1)
    Body = "(and";
  for (const std::string &B : BodyApps)
    Body += Parts > 1 ? " " + B : B;
  if (Constraint != nullptr)
    Body += Parts > 1 ? " " + render(Constraint) : render(Constraint);
  if (Parts > 1)
    Body += ")";
  return "(rule (=> " + Body + " " + Head + "))";
}
