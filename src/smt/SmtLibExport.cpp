//===- smt/SmtLibExport.cpp - SMT-LIB2 rendering -----------------------------===//

#include "smt/SmtLibExport.h"

#include "support/StringExtras.h"

#include <cctype>

using namespace chute;

namespace {

/// Quotes a symbol when it contains characters outside the SMT-LIB
/// simple-symbol alphabet.
std::string symbol(const std::string &Name) {
  bool Simple = !Name.empty() && !std::isdigit(static_cast<unsigned char>(Name[0]));
  for (char C : Name)
    if (!(std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
          C == '-'))
      Simple = false;
  if (Simple)
    return Name;
  return "|" + Name + "|";
}

std::string intLit(std::int64_t V) {
  if (V < 0)
    return "(- " + std::to_string(-V) + ")";
  return std::to_string(V);
}

std::string render(ExprRef E) {
  switch (E->kind()) {
  case ExprKind::IntConst:
    return intLit(E->intValue());
  case ExprKind::Var:
    return symbol(E->varName());
  case ExprKind::Add: {
    std::string S = "(+";
    for (ExprRef Op : E->operands())
      S += " " + render(Op);
    return S + ")";
  }
  case ExprKind::Mul:
    return "(* " + render(E->operand(0)) + " " +
           render(E->operand(1)) + ")";
  case ExprKind::Eq:
    return "(= " + render(E->operand(0)) + " " +
           render(E->operand(1)) + ")";
  case ExprKind::Ne:
    return "(distinct " + render(E->operand(0)) + " " +
           render(E->operand(1)) + ")";
  case ExprKind::Le:
    return "(<= " + render(E->operand(0)) + " " +
           render(E->operand(1)) + ")";
  case ExprKind::Lt:
    return "(< " + render(E->operand(0)) + " " +
           render(E->operand(1)) + ")";
  case ExprKind::Ge:
    return "(>= " + render(E->operand(0)) + " " +
           render(E->operand(1)) + ")";
  case ExprKind::Gt:
    return "(> " + render(E->operand(0)) + " " +
           render(E->operand(1)) + ")";
  case ExprKind::True:
    return "true";
  case ExprKind::False:
    return "false";
  case ExprKind::And: {
    std::string S = "(and";
    for (ExprRef Op : E->operands())
      S += " " + render(Op);
    return S + ")";
  }
  case ExprKind::Or: {
    std::string S = "(or";
    for (ExprRef Op : E->operands())
      S += " " + render(Op);
    return S + ")";
  }
  case ExprKind::Not:
    return "(not " + render(E->operand(0)) + ")";
  case ExprKind::Implies:
    return "(=> " + render(E->operand(0)) + " " +
           render(E->operand(1)) + ")";
  case ExprKind::Exists:
  case ExprKind::Forall: {
    std::string S = E->kind() == ExprKind::Exists ? "(exists (" : "(forall (";
    for (ExprRef B : E->boundVars())
      S += "(" + symbol(B->varName()) + " Int)";
    return S + ") " + render(E->body()) + ")";
  }
  }
  return "true";
}

} // namespace

std::string chute::toSmtLib(ExprRef E) { return render(E); }

std::string chute::toSmtLibQuery(ExprRef E) {
  std::string S = "(set-logic ALL)\n";
  for (ExprRef V : freeVars(E))
    S += "(declare-const " + symbol(V->varName()) + " Int)\n";
  S += "(assert " + render(E) + ")\n";
  S += "(check-sat)\n";
  return S;
}
