//===- smt/Z3Context.h - RAII wrapper over the Z3 C context ----*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exception-free RAII ownership of a Z3_context. Z3 errors are
/// captured by an error handler into a flag that callers inspect; we
/// never enable Z3's exception machinery.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_SMT_Z3CONTEXT_H
#define CHUTE_SMT_Z3CONTEXT_H

#include <string>

#include <z3.h>

namespace chute {

/// Owns a Z3_context configured for quantified linear integer
/// arithmetic with a model-producing default solver.
class Z3Context {
public:
  Z3Context();
  ~Z3Context();

  Z3Context(const Z3Context &) = delete;
  Z3Context &operator=(const Z3Context &) = delete;

  Z3_context raw() const { return Ctx; }

  /// True if a Z3 error has been recorded since the last clearError().
  bool hasError() const { return !LastError.empty(); }

  /// The last recorded Z3 error message (empty when none).
  const std::string &lastError() const { return LastError; }

  void clearError() { LastError.clear(); }

  /// Records an error message; called from the Z3 error handler.
  void noteError(const std::string &Msg) { LastError = Msg; }

private:
  Z3_context Ctx = nullptr;
  std::string LastError;
};

} // namespace chute

#endif // CHUTE_SMT_Z3CONTEXT_H
