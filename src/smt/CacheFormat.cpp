//===- smt/CacheFormat.cpp - Shared cache serialisation grammar ------------===//

#include "smt/CacheFormat.h"

#include "expr/Expr.h"

#include <cctype>
#include <sstream>
#include <unordered_map>

#include <z3.h>

using namespace chute;

std::uint64_t cachefmt::fnv1a(const std::string &S) {
  std::uint64_t H = 0xcbf29ce484222325ULL;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

std::string cachefmt::z3VersionString() {
  unsigned Major = 0, Minor = 0, Build = 0, Rev = 0;
  Z3_get_version(&Major, &Minor, &Build, &Rev);
  std::ostringstream Os;
  Os << Major << '.' << Minor << '.' << Build << '.' << Rev;
  return Os.str();
}

namespace {

/// Maps a serialisable operator kind to its file token; nullptr for
/// kinds handled specially (leaves, quantifiers).
const char *opToken(ExprKind K) {
  switch (K) {
  case ExprKind::Add:
    return "add";
  case ExprKind::Mul:
    return "mul";
  case ExprKind::Eq:
    return "eq";
  case ExprKind::Ne:
    return "ne";
  case ExprKind::Le:
    return "le";
  case ExprKind::Lt:
    return "lt";
  case ExprKind::Ge:
    return "ge";
  case ExprKind::Gt:
    return "gt";
  case ExprKind::And:
    return "and";
  case ExprKind::Or:
    return "or";
  case ExprKind::Not:
    return "not";
  case ExprKind::Implies:
    return "imp";
  default:
    return nullptr;
  }
}

bool nameSerialisable(const std::string &Name) {
  if (Name.empty())
    return false;
  for (char C : Name)
    if (std::isspace(static_cast<unsigned char>(C)) ||
        static_cast<unsigned char>(C) < 0x20)
      return false;
  return true;
}

/// Assigns dense ids to every node reachable from an expression
/// (children before parents) and emits their definition lines.
/// Returns false when the expression cannot be serialised.
class ExprWriter {
public:
  explicit ExprWriter(std::ostringstream &Nodes) : Nodes(Nodes) {}

  bool id(ExprRef E, std::size_t &Out) {
    auto It = Ids.find(E);
    if (It != Ids.end()) {
      Out = It->second;
      return true;
    }
    switch (E->kind()) {
    case ExprKind::IntConst:
      Nodes << "i " << E->intValue() << '\n';
      break;
    case ExprKind::Var:
      if (!nameSerialisable(E->varName()))
        return false;
      Nodes << "v " << E->varName() << '\n';
      break;
    case ExprKind::True:
      Nodes << "t\n";
      break;
    case ExprKind::False:
      Nodes << "f\n";
      break;
    case ExprKind::Exists:
    case ExprKind::Forall: {
      std::vector<std::size_t> BoundIds;
      for (ExprRef B : E->boundVars()) {
        std::size_t I;
        if (!id(B, I))
          return false;
        BoundIds.push_back(I);
      }
      std::size_t BodyId;
      if (!id(E->body(), BodyId))
        return false;
      Nodes << (E->kind() == ExprKind::Exists ? "ex " : "fa ")
            << BoundIds.size();
      for (std::size_t I : BoundIds)
        Nodes << ' ' << I;
      Nodes << ' ' << BodyId << '\n';
      break;
    }
    default: {
      const char *Tok = opToken(E->kind());
      if (Tok == nullptr)
        return false;
      std::vector<std::size_t> OpIds;
      for (ExprRef Op : E->operands()) {
        std::size_t I;
        if (!id(Op, I))
          return false;
        OpIds.push_back(I);
      }
      Nodes << Tok << ' ' << OpIds.size();
      for (std::size_t I : OpIds)
        Nodes << ' ' << I;
      Nodes << '\n';
      break;
    }
    }
    Out = Next++;
    Ids.emplace(E, Out);
    return true;
  }

  std::size_t count() const { return Next; }

private:
  std::ostringstream &Nodes;
  std::unordered_map<ExprRef, std::size_t> Ids;
  std::size_t Next = 0;
};

bool parseSize(std::istringstream &Ts, std::size_t &Out,
               std::size_t Limit) {
  long long V;
  if (!(Ts >> V) || V < 0 || static_cast<unsigned long long>(V) > Limit)
    return false;
  Out = static_cast<std::size_t>(V);
  return true;
}

bool parseNodeRef(std::istringstream &Ts, std::size_t Known,
                  std::size_t &Out) {
  // A node may only reference already-defined nodes: this is what
  // makes cycles and forward garbage unrepresentable.
  return parseSize(Ts, Out, Known == 0 ? 0 : Known - 1) && Known != 0;
}

bool atEnd(std::istringstream &Ts) {
  std::string Rest;
  return !(Ts >> Rest);
}

} // namespace

std::string cachefmt::exprText(ExprRef E) {
  if (E == nullptr)
    return std::string();
  std::ostringstream Nodes;
  ExprWriter W(Nodes);
  std::size_t Id;
  if (!W.id(E, Id))
    return std::string();
  return Nodes.str();
}

std::string cachefmt::serializeBody(const CacheSnapshot &S) {
  std::ostringstream Nodes, Records;
  ExprWriter W(Nodes);
  std::size_t NSat = 0, NQe = 0, NCores = 0;

  for (const CacheSnapshot::SatRecord &R : S.Sat) {
    if (R.E == nullptr || R.R == SatResult::Unknown)
      continue; // only definite verdicts are durable facts
    std::size_t Id;
    if (!W.id(R.E, Id))
      continue;
    Records << "S " << Id << ' '
            << (R.R == SatResult::Sat ? "sat" : "unsat") << '\n';
    ++NSat;
  }
  for (const CacheSnapshot::QeRecord &R : S.Qe) {
    if (R.In == nullptr || R.Out == nullptr)
      continue;
    std::size_t InId, OutId;
    if (!W.id(R.In, InId) || !W.id(R.Out, OutId))
      continue;
    Records << "Q " << InId << ' ' << OutId << '\n';
    ++NQe;
  }
  for (const std::vector<ExprRef> &Core : S.Cores) {
    if (Core.empty())
      continue;
    std::vector<std::size_t> Ids;
    bool Ok = true;
    for (ExprRef E : Core) {
      std::size_t Id;
      if (E == nullptr || !W.id(E, Id)) {
        Ok = false;
        break;
      }
      Ids.push_back(Id);
    }
    if (!Ok)
      continue;
    Records << "C " << Ids.size();
    for (std::size_t Id : Ids)
      Records << ' ' << Id;
    Records << '\n';
    ++NCores;
  }

  std::ostringstream Out;
  Out << "E " << W.count() << " S " << NSat << " Q " << NQe << " C "
      << NCores << '\n'
      << Nodes.str() << Records.str();
  return Out.str();
}

bool cachefmt::parseBody(const std::string &Text, ExprContext &Ctx,
                         CacheSnapshot &Out) {
  std::istringstream In(Text);
  std::string Line;

  // Counts line (makes truncation detectable).
  std::size_t NNodes = 0, NSat = 0, NQe = 0, NCores = 0;
  if (!std::getline(In, Line))
    return false;
  {
    std::istringstream Ts(Line);
    std::string KE, KS, KQ, KC;
    constexpr std::size_t Sane = 1u << 24;
    if (!(Ts >> KE) || KE != "E" || !parseSize(Ts, NNodes, Sane) ||
        !(Ts >> KS) || KS != "S" || !parseSize(Ts, NSat, Sane) ||
        !(Ts >> KQ) || KQ != "Q" || !parseSize(Ts, NQe, Sane) ||
        !(Ts >> KC) || KC != "C" || !parseSize(Ts, NCores, Sane) ||
        !atEnd(Ts))
      return false;
  }

  // Expression DAG, children before parents.
  std::vector<ExprRef> ById;
  ById.reserve(NNodes);
  for (std::size_t I = 0; I < NNodes; ++I) {
    if (!std::getline(In, Line))
      return false;
    std::istringstream Ts(Line);
    std::string Tok;
    if (!(Ts >> Tok))
      return false;
    ExprRef E = nullptr;
    if (Tok == "i") {
      long long V;
      if (!(Ts >> V) || !atEnd(Ts))
        return false;
      E = Ctx.mkInt(V);
    } else if (Tok == "v") {
      std::string Name;
      if (!(Ts >> Name) || !nameSerialisable(Name) || !atEnd(Ts))
        return false;
      E = Ctx.mkVar(Name);
    } else if (Tok == "t") {
      if (!atEnd(Ts))
        return false;
      E = Ctx.mkTrue();
    } else if (Tok == "f") {
      if (!atEnd(Ts))
        return false;
      E = Ctx.mkFalse();
    } else if (Tok == "ex" || Tok == "fa") {
      std::size_t NBound = 0;
      if (!parseSize(Ts, NBound, 64))
        return false;
      std::vector<ExprRef> Bound;
      for (std::size_t B = 0; B < NBound; ++B) {
        std::size_t Id;
        if (!parseNodeRef(Ts, ById.size(), Id) || !ById[Id]->isVar())
          return false;
        Bound.push_back(ById[Id]);
      }
      std::size_t BodyId;
      if (!parseNodeRef(Ts, ById.size(), BodyId) || !atEnd(Ts))
        return false;
      E = Tok == "ex" ? Ctx.mkExists(std::move(Bound), ById[BodyId])
                      : Ctx.mkForall(std::move(Bound), ById[BodyId]);
    } else {
      ExprKind K;
      if (Tok == "add")
        K = ExprKind::Add;
      else if (Tok == "mul")
        K = ExprKind::Mul;
      else if (Tok == "eq")
        K = ExprKind::Eq;
      else if (Tok == "ne")
        K = ExprKind::Ne;
      else if (Tok == "le")
        K = ExprKind::Le;
      else if (Tok == "lt")
        K = ExprKind::Lt;
      else if (Tok == "ge")
        K = ExprKind::Ge;
      else if (Tok == "gt")
        K = ExprKind::Gt;
      else if (Tok == "and")
        K = ExprKind::And;
      else if (Tok == "or")
        K = ExprKind::Or;
      else if (Tok == "not")
        K = ExprKind::Not;
      else if (Tok == "imp")
        K = ExprKind::Implies;
      else
        return false;
      std::size_t NOps = 0;
      if (!parseSize(Ts, NOps, 1u << 20))
        return false;
      std::vector<ExprRef> Ops;
      for (std::size_t O = 0; O < NOps; ++O) {
        std::size_t Id;
        if (!parseNodeRef(Ts, ById.size(), Id))
          return false;
        Ops.push_back(ById[Id]);
      }
      if (!atEnd(Ts))
        return false;
      switch (K) {
      case ExprKind::Add:
        if (Ops.empty())
          return false;
        E = Ctx.mkAdd(std::move(Ops));
        break;
      case ExprKind::Mul:
        if (Ops.size() != 2)
          return false;
        E = Ctx.mkMul(Ops[0], Ops[1]);
        break;
      case ExprKind::And:
        E = Ctx.mkAnd(std::move(Ops));
        break;
      case ExprKind::Or:
        E = Ctx.mkOr(std::move(Ops));
        break;
      case ExprKind::Not:
        if (Ops.size() != 1)
          return false;
        E = Ctx.mkNot(Ops[0]);
        break;
      case ExprKind::Implies:
        if (Ops.size() != 2)
          return false;
        E = Ctx.mkImplies(Ops[0], Ops[1]);
        break;
      default: // the six comparisons
        if (Ops.size() != 2)
          return false;
        E = Ctx.mkCmp(K, Ops[0], Ops[1]);
        break;
      }
    }
    if (E == nullptr)
      return false;
    ById.push_back(E);
  }

  // Records.
  CacheSnapshot S;
  for (std::size_t I = 0; I < NSat; ++I) {
    if (!std::getline(In, Line))
      return false;
    std::istringstream Ts(Line);
    std::string Tag, VerdictTok;
    std::size_t Id;
    if (!(Ts >> Tag) || Tag != "S" ||
        !parseNodeRef(Ts, ById.size(), Id) || !(Ts >> VerdictTok) ||
        !atEnd(Ts))
      return false;
    // "unknown" is deliberately not a token of the format: transient
    // verdicts are unrepresentable, not merely filtered.
    SatResult V;
    if (VerdictTok == "sat")
      V = SatResult::Sat;
    else if (VerdictTok == "unsat")
      V = SatResult::Unsat;
    else
      return false;
    S.Sat.push_back({ById[Id], V});
  }
  for (std::size_t I = 0; I < NQe; ++I) {
    if (!std::getline(In, Line))
      return false;
    std::istringstream Ts(Line);
    std::string Tag;
    std::size_t InId, OutId;
    if (!(Ts >> Tag) || Tag != "Q" ||
        !parseNodeRef(Ts, ById.size(), InId) ||
        !parseNodeRef(Ts, ById.size(), OutId) || !atEnd(Ts))
      return false;
    S.Qe.push_back({ById[InId], ById[OutId]});
  }
  for (std::size_t I = 0; I < NCores; ++I) {
    if (!std::getline(In, Line))
      return false;
    std::istringstream Ts(Line);
    std::string Tag;
    std::size_t N = 0;
    if (!(Ts >> Tag) || Tag != "C" || !parseSize(Ts, N, 1u << 10) ||
        N == 0)
      return false;
    std::vector<ExprRef> Core;
    for (std::size_t C = 0; C < N; ++C) {
      std::size_t Id;
      if (!parseNodeRef(Ts, ById.size(), Id))
        return false;
      Core.push_back(ById[Id]);
    }
    if (!atEnd(Ts))
      return false;
    S.Cores.push_back(std::move(Core));
  }
  if (std::getline(In, Line))
    return false; // trailing garbage

  Out = std::move(S);
  return true;
}
