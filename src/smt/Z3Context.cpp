//===- smt/Z3Context.cpp - RAII wrapper over the Z3 C context -------------===//

#include "smt/Z3Context.h"

#include <cassert>
#include <mutex>
#include <unordered_map>

using namespace chute;

namespace {

/// Z3 hands the raw context to the error handler; map it back to the
/// owning wrapper so the handler can record the message. The parallel
/// proof scheduler creates one context per worker thread, so the map
/// is mutated from ctor/dtor on several threads and read from the
/// error handler concurrently — every access must hold the mutex.
std::mutex &registryMutex() {
  static std::mutex Mu;
  return Mu;
}

std::unordered_map<Z3_context, Z3Context *> &registry() {
  static std::unordered_map<Z3_context, Z3Context *> Map;
  return Map;
}

void errorHandler(Z3_context C, Z3_error_code Code) {
  Z3Context *Owner = nullptr;
  {
    std::lock_guard<std::mutex> Lock(registryMutex());
    auto It = registry().find(C);
    if (It == registry().end())
      return;
    Owner = It->second;
  }
  // Z3 invokes the handler on the thread driving C; the owning
  // wrapper is only used from that same thread, so recording the
  // message outside the lock is safe (and keeps Z3_get_error_msg —
  // which may allocate inside C — out of the critical section).
  const char *Msg = Z3_get_error_msg(C, Code);
  Owner->noteError(Msg != nullptr ? Msg : "unknown Z3 error");
}

} // namespace

Z3Context::Z3Context() {
  Z3_config Cfg = Z3_mk_config();
  Z3_set_param_value(Cfg, "model", "true");
  Ctx = Z3_mk_context(Cfg);
  Z3_del_config(Cfg);
  assert(Ctx && "failed to create Z3 context");
  {
    std::lock_guard<std::mutex> Lock(registryMutex());
    registry()[Ctx] = this;
  }
  Z3_set_error_handler(Ctx, errorHandler);
}

Z3Context::~Z3Context() {
  if (Ctx != nullptr) {
    {
      std::lock_guard<std::mutex> Lock(registryMutex());
      registry().erase(Ctx);
    }
    Z3_del_context(Ctx);
  }
}
