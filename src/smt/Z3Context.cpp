//===- smt/Z3Context.cpp - RAII wrapper over the Z3 C context -------------===//

#include "smt/Z3Context.h"

#include <cassert>
#include <unordered_map>

using namespace chute;

namespace {

/// Z3 hands the raw context to the error handler; map it back to the
/// owning wrapper so the handler can record the message. Access is
/// single-threaded throughout this project.
std::unordered_map<Z3_context, Z3Context *> &registry() {
  static std::unordered_map<Z3_context, Z3Context *> Map;
  return Map;
}

void errorHandler(Z3_context C, Z3_error_code Code) {
  auto It = registry().find(C);
  if (It == registry().end())
    return;
  const char *Msg = Z3_get_error_msg(C, Code);
  It->second->noteError(Msg != nullptr ? Msg : "unknown Z3 error");
}

} // namespace

Z3Context::Z3Context() {
  Z3_config Cfg = Z3_mk_config();
  Z3_set_param_value(Cfg, "model", "true");
  Ctx = Z3_mk_context(Cfg);
  Z3_del_config(Cfg);
  assert(Ctx && "failed to create Z3 context");
  registry()[Ctx] = this;
  Z3_set_error_handler(Ctx, errorHandler);
}

Z3Context::~Z3Context() {
  if (Ctx != nullptr) {
    registry().erase(Ctx);
    Z3_del_context(Ctx);
  }
}
