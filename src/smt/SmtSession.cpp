//===- smt/SmtSession.cpp - Persistent incremental SMT session -------------===//

#include "smt/SmtSession.h"

#include "smt/FaultInjection.h"
#include "smt/Z3Translate.h"

#include <string>

using namespace chute;

SmtSession::SmtSession(Z3Context &Zc, std::size_t MaxLits)
    : Zc(Zc), MaxLits(MaxLits == 0 ? 1 : MaxLits) {}

SmtSession::~SmtSession() {
  if (Solver != nullptr)
    Z3_solver_dec_ref(Zc.raw(), Solver);
}

void SmtSession::ensureSolver() {
  if (Solver != nullptr)
    return;
  Z3_context C = Zc.raw();
  Solver = Z3_mk_solver(C);
  Z3_solver_inc_ref(C, Solver);
  // All guarded assertions live inside this frame so reset() can drop
  // them without destroying the solver.
  Z3_solver_push(C, Solver);
  ++St.FramesPushed;
}

void SmtSession::reset() {
  if (Solver != nullptr) {
    Z3_context C = Zc.raw();
    Z3_solver_pop(C, Solver, 1);
    ++St.FramesPopped;
    Z3_solver_push(C, Solver);
    ++St.FramesPushed;
  }
  Lits.clear();
  Back.clear();
  ++St.Resets;
}

Z3_ast SmtSession::literalFor(ExprRef Conjunct) {
  auto It = Lits.find(Conjunct);
  if (It != Lits.end()) {
    ++St.LitsReused;
    return It->second;
  }
  Z3_context C = Zc.raw();
  // The '!' keeps the guard outside the program-variable namespace
  // (and the literal is Boolean-sorted while program variables are
  // integers, so a clash could not alias anyway).
  std::string Name = "chute!assume!" + std::to_string(NextLitId++);
  Z3_ast Lit = Z3_mk_const(C, Z3_mk_string_symbol(C, Name.c_str()),
                           Z3_mk_bool_sort(C));
  Z3_ast Body = toZ3(Zc, Conjunct);
  if (Zc.hasError())
    return nullptr;
  Z3_solver_assert(C, Solver, Z3_mk_implies(C, Lit, Body));
  Lits.emplace(Conjunct, Lit);
  Back.emplace(Lit, Conjunct);
  ++St.LitsRegistered;
  return Lit;
}

SatResult SmtSession::check(const std::vector<ExprRef> &Conjuncts,
                            unsigned TimeoutMs, unsigned Seed,
                            std::vector<ExprRef> *CoreOut) {
  if (CoreOut != nullptr)
    CoreOut->clear();
  if (smtFaultShouldInjectUnknown())
    return SatResult::Unknown;

  ensureSolver();
  if (Lits.size() + Conjuncts.size() > MaxLits)
    reset();
  Z3_context C = Zc.raw();
  Zc.clearError();

  std::vector<Z3_ast> Assumptions;
  Assumptions.reserve(Conjuncts.size());
  for (ExprRef Conjunct : Conjuncts) {
    Z3_ast Lit = literalFor(Conjunct);
    if (Lit == nullptr || Zc.hasError()) {
      // Translation failure poisons nothing permanent, but the frame
      // may hold a half-registered literal: start over.
      reset();
      ++St.ErrorResets;
      Zc.clearError();
      return SatResult::Unknown;
    }
    Assumptions.push_back(Lit);
  }

  // Per-check knobs: the facade derives the timeout from the
  // governing budget, and retries re-seed the heuristics.
  Z3_params Params = Z3_mk_params(C);
  Z3_params_inc_ref(C, Params);
  Z3_params_set_uint(C, Params, Z3_mk_string_symbol(C, "timeout"),
                     TimeoutMs);
  Z3_params_set_uint(C, Params,
                     Z3_mk_string_symbol(C, "random_seed"), Seed);
  Z3_solver_set_params(C, Solver, Params);
  Z3_params_dec_ref(C, Params);

  ++St.Checks;
  Z3_lbool R = Z3_solver_check_assumptions(
      C, Solver, static_cast<unsigned>(Assumptions.size()),
      Assumptions.data());
  if (Zc.hasError()) {
    // The solver state is suspect after an error: never reuse it.
    reset();
    ++St.ErrorResets;
    Zc.clearError();
    return SatResult::Unknown;
  }

  switch (R) {
  case Z3_L_TRUE:
    return SatResult::Sat;
  case Z3_L_FALSE: {
    if (CoreOut != nullptr) {
      Z3_ast_vector Core = Z3_solver_get_unsat_core(C, Solver);
      if (Core != nullptr && !Zc.hasError()) {
        Z3_ast_vector_inc_ref(C, Core);
        unsigned N = Z3_ast_vector_size(C, Core);
        for (unsigned I = 0; I < N; ++I) {
          auto It = Back.find(Z3_ast_vector_get(C, Core, I));
          if (It == Back.end()) {
            // An unrecognised core member would make the mapped core
            // an under-approximation — unusable; report none.
            CoreOut->clear();
            break;
          }
          CoreOut->push_back(It->second);
        }
        Z3_ast_vector_dec_ref(C, Core);
        if (!CoreOut->empty()) {
          ++St.UnsatCores;
          St.CoreLits += CoreOut->size();
        }
      }
      Zc.clearError();
    }
    return SatResult::Unsat;
  }
  default:
    return SatResult::Unknown;
  }
}

std::optional<Model>
SmtSession::getModel(const std::vector<ExprRef> &Vars) {
  Z3_context C = Zc.raw();
  Z3_model M = Z3_solver_get_model(C, Solver);
  if (M == nullptr || Zc.hasError()) {
    Zc.clearError();
    return std::nullopt;
  }
  Z3_model_inc_ref(C, M);
  Model Result;
  for (ExprRef V : Vars) {
    assert(V->isVar() && "model extraction needs variables");
    Z3_ast Const = toZ3(Zc, V);
    Z3_ast Value = nullptr;
    if (!Z3_model_eval(C, M, Const, /*model_completion=*/true,
                       &Value) ||
        Value == nullptr)
      continue;
    std::int64_t IV = 0;
    if (Z3_get_ast_kind(C, Value) == Z3_NUMERAL_AST &&
        Z3_get_numeral_int64(C, Value, &IV))
      Result.set(V->varName(), IV);
  }
  Z3_model_dec_ref(C, M);
  return Result;
}
