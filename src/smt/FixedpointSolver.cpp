//===- smt/FixedpointSolver.cpp - Z3 Spacer (CHC) wrapper -------------------===//

#include "smt/FixedpointSolver.h"

#include "smt/FaultInjection.h"
#include "smt/SmtLibExport.h"
#include "smt/Z3Translate.h"

#include <atomic>
#include <cassert>
#include <thread>

using namespace chute;

const char *chute::toString(FixedpointSolver::Result R) {
  switch (R) {
  case FixedpointSolver::Result::Unreachable:
    return "unreachable";
  case FixedpointSolver::Result::Reachable:
    return "reachable";
  case FixedpointSolver::Result::Unknown:
    return "unknown";
  }
  return "?";
}

FixedpointSolver::FixedpointSolver() {
  Z3_context C = Z3.raw();
  Fp = Z3_mk_fixedpoint(C);
  Z3_fixedpoint_inc_ref(C, Fp);
  // Spacer is the CHC engine for arithmetic clauses; the default
  // auto-selection can fall back to the finite-domain Datalog engine
  // and reject integer rules.
  Z3_params Params = Z3_mk_params(C);
  Z3_params_inc_ref(C, Params);
  Z3_params_set_symbol(C, Params, Z3_mk_string_symbol(C, "engine"),
                       Z3_mk_string_symbol(C, "spacer"));
  Z3_fixedpoint_set_params(C, Fp, Params);
  Z3_params_dec_ref(C, Params);
  if (Z3.hasError()) {
    Z3.clearError();
    Poisoned = true;
  }
}

FixedpointSolver::~FixedpointSolver() {
  if (Fp != nullptr)
    Z3_fixedpoint_dec_ref(Z3.raw(), Fp);
}

FixedpointSolver::RelId FixedpointSolver::declareRelation(std::string Name,
                                                          unsigned Arity) {
  Z3_context C = Z3.raw();
  std::vector<Z3_sort> Domain(Arity, Z3_mk_int_sort(C));
  Z3_func_decl Decl = Z3_mk_func_decl(
      C, Z3_mk_string_symbol(C, Name.c_str()), Arity,
      Arity == 0 ? nullptr : Domain.data(), Z3_mk_bool_sort(C));
  Z3_fixedpoint_register_relation(C, Fp, Decl);
  if (Z3.hasError()) {
    Z3.clearError();
    Poisoned = true;
  }
  Script += toSmtLibChcRelation(Name, Arity) + "\n";
  Relations.push_back({std::move(Name), Arity, Decl});
  ++St.Relations;
  return static_cast<RelId>(Relations.size() - 1);
}

Z3_ast FixedpointSolver::translateApp(const App &A) {
  assert(A.Rel < Relations.size() && "unknown relation");
  const Relation &R = Relations[A.Rel];
  assert(A.Args.size() == R.Arity && "arity mismatch");
  std::vector<Z3_ast> Args;
  Args.reserve(A.Args.size());
  for (ExprRef E : A.Args)
    Args.push_back(toZ3(Z3, E));
  return Z3_mk_app(Z3.raw(), R.Decl, static_cast<unsigned>(Args.size()),
                   Args.empty() ? nullptr : Args.data());
}

void FixedpointSolver::collectVars(ExprRef E, std::vector<ExprRef> &Vars) {
  for (ExprRef V : freeVars(E)) {
    bool Seen = false;
    for (ExprRef Have : Vars)
      Seen = Seen || Have == V;
    if (!Seen)
      Vars.push_back(V);
  }
}

bool FixedpointSolver::addRule(const App &Head, const std::vector<App> &Body,
                               ExprRef Constraint) {
  if (Poisoned)
    return false;
  Z3_context C = Z3.raw();

  // The rule's universally quantified variables: every free variable
  // of the head, the body applications, and the side constraint.
  std::vector<ExprRef> Vars;
  for (ExprRef E : Head.Args)
    collectVars(E, Vars);
  for (const App &B : Body)
    for (ExprRef E : B.Args)
      collectVars(E, Vars);
  if (Constraint != nullptr)
    collectVars(Constraint, Vars);

  std::vector<Z3_ast> Parts;
  Parts.reserve(Body.size() + 1);
  for (const App &B : Body)
    Parts.push_back(translateApp(B));
  if (Constraint != nullptr)
    Parts.push_back(toZ3(Z3, Constraint));

  Z3_ast HeadAst = translateApp(Head);
  Z3_ast RuleAst = HeadAst;
  if (!Parts.empty()) {
    Z3_ast BodyAst = Parts.size() == 1
                         ? Parts[0]
                         : Z3_mk_and(C, static_cast<unsigned>(Parts.size()),
                                     Parts.data());
    RuleAst = Z3_mk_implies(C, BodyAst, HeadAst);
  }
  if (!Vars.empty()) {
    std::vector<Z3_app> Bound;
    Bound.reserve(Vars.size());
    for (ExprRef V : Vars)
      Bound.push_back(Z3_to_app(C, toZ3(Z3, V)));
    RuleAst = Z3_mk_forall_const(C, 0, static_cast<unsigned>(Bound.size()),
                                 Bound.data(), 0, nullptr, RuleAst);
  }

  std::string RuleName = "r" + std::to_string(St.Rules);
  Z3_fixedpoint_add_rule(C, Fp, RuleAst,
                         Z3_mk_string_symbol(C, RuleName.c_str()));
  if (Z3.hasError()) {
    Z3.clearError();
    Poisoned = true;
    return false;
  }

  // Mirror the rule into the replayable script.
  for (ExprRef V : Vars)
    Script += toSmtLibChcVar(V) + "\n";
  std::vector<std::string> BodyText;
  BodyText.reserve(Body.size());
  for (const App &B : Body)
    BodyText.push_back(toSmtLibChcApp(Relations[B.Rel].Name, B.Args));
  Script += toSmtLibChcRule(toSmtLibChcApp(Relations[Head.Rel].Name,
                                           Head.Args),
                            BodyText, Constraint) +
            "\n";
  ++St.Rules;
  return true;
}

FixedpointSolver::Result FixedpointSolver::query(const App &Query,
                                                 const Budget &B,
                                                 unsigned TimeoutCapMs) {
  ++St.Queries;
  Script += "(query " + toSmtLibSymbol(Relations[Query.Rel].Name) + ")\n";
  if (Poisoned)
    return Result::Unknown;
  if (B.cancelled() || B.expired())
    return Result::Unknown;
  if (!B.isUnlimited() && B.remainingMs() < Budget::MinQueryMs)
    return Result::Unknown;
  if (smtFaultShouldInjectUnknown())
    return Result::Unknown;

  Z3_context C = Z3.raw();
  unsigned TimeoutMs = B.queryTimeoutMs(TimeoutCapMs);
  if (TimeoutMs != 0) {
    Z3_params Params = Z3_mk_params(C);
    Z3_params_inc_ref(C, Params);
    Z3_params_set_uint(C, Params, Z3_mk_string_symbol(C, "timeout"),
                       TimeoutMs);
    Z3_fixedpoint_set_params(C, Fp, Params);
    Z3_params_dec_ref(C, Params);
  }

  // Existentially close the query over its argument variables (a
  // nullary query — the encoder's Bad relation — needs no closure).
  std::vector<ExprRef> Vars;
  for (ExprRef E : Query.Args)
    collectVars(E, Vars);
  Z3_ast QueryAst = translateApp(Query);
  if (!Vars.empty()) {
    std::vector<Z3_app> Bound;
    Bound.reserve(Vars.size());
    for (ExprRef V : Vars)
      Bound.push_back(Z3_to_app(C, toZ3(Z3, V)));
    QueryAst = Z3_mk_exists_const(C, 0, static_cast<unsigned>(Bound.size()),
                                  Bound.data(), 0, nullptr, QueryAst);
  }

  // Watchdog: Spacer honours the timeout parameter on its own, but
  // cooperative cancellation (a portfolio sibling won, the daemon
  // dropped the connection) must reach a solve already in flight.
  std::atomic<bool> Done{false};
  std::atomic<bool> Interrupted{false};
  std::thread Watchdog([&] {
    while (!Done.load(std::memory_order_acquire)) {
      if (B.cancelled() || B.expired()) {
        Interrupted.store(true, std::memory_order_release);
        Z3_interrupt(C);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  Z3.clearError();
  Z3_lbool Answer = Z3_fixedpoint_query(C, Fp, QueryAst);
  Done.store(true, std::memory_order_release);
  Watchdog.join();

  if (Interrupted.load(std::memory_order_acquire))
    ++St.Interrupts;
  if (Z3.hasError()) {
    // An interrupt surfaces as a "canceled" error; anything else
    // (malformed rules, engine misuse) poisons the system so later
    // queries stay conservative.
    if (!Interrupted.load(std::memory_order_acquire))
      Poisoned = true;
    Z3.clearError();
    return Result::Unknown;
  }

  switch (Answer) {
  case Z3_L_TRUE:
    return Result::Reachable;
  case Z3_L_FALSE:
    return Result::Unreachable;
  default:
    return Result::Unknown;
  }
}
