//===- smt/SmtLibExport.h - SMT-LIB2 rendering ----------------*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders expressions and whole queries in SMT-LIB2 concrete syntax,
/// for debugging, external cross-checking (any SMT-LIB solver can
/// replay a query), and interop.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_SMT_SMTLIBEXPORT_H
#define CHUTE_SMT_SMTLIBEXPORT_H

#include "expr/Expr.h"

namespace chute {

/// Renders \p E as an SMT-LIB2 s-expression (sorts: Int/Bool).
/// Variable names with characters outside the simple-symbol alphabet
/// (primes, '@', '!', '.') are emitted as |quoted symbols|.
std::string toSmtLib(ExprRef E);

/// Renders a complete benchmark: declarations for every free
/// variable, one assert, and (check-sat).
std::string toSmtLibQuery(ExprRef E);

} // namespace chute

#endif // CHUTE_SMT_SMTLIBEXPORT_H
