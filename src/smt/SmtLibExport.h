//===- smt/SmtLibExport.h - SMT-LIB2 rendering ----------------*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders expressions and whole queries in SMT-LIB2 concrete syntax,
/// for debugging, external cross-checking (any SMT-LIB solver can
/// replay a query), and interop.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_SMT_SMTLIBEXPORT_H
#define CHUTE_SMT_SMTLIBEXPORT_H

#include "expr/Expr.h"

namespace chute {

/// Renders \p E as an SMT-LIB2 s-expression (sorts: Int/Bool).
/// Variable names with characters outside the simple-symbol alphabet
/// (primes, '@', '!', '.') are emitted as |quoted symbols|.
std::string toSmtLib(ExprRef E);

/// Renders a complete benchmark: declarations for every free
/// variable, one assert, and (check-sat).
std::string toSmtLibQuery(ExprRef E);

//===-- CHC (fixedpoint) emission ------------------------------------===//
// Building blocks for Z3's extended SMT-LIB fixedpoint syntax
// (declare-rel / declare-var / rule / query), used by
// smt/FixedpointSolver to keep a replayable script next to the
// native rules. Relations are not chute expressions, so applications
// are rendered from a name plus argument expressions.

/// Renders \p Name as an SMT-LIB symbol, |quoting| it when it strays
/// outside the simple-symbol alphabet.
std::string toSmtLibSymbol(const std::string &Name);

/// "(declare-rel R (Int Int))" — a relation over Int^Arity.
std::string toSmtLibChcRelation(const std::string &Name, unsigned Arity);

/// "(declare-var x Int)" — a rule-scoped variable declaration.
std::string toSmtLibChcVar(ExprRef Var);

/// "(R x y)", or just "R" for a nullary relation.
std::string toSmtLibChcApp(const std::string &Name,
                           const std::vector<ExprRef> &Args);

/// "(rule (=> (and <body...> <constraint>) <head>))"; body atoms are
/// pre-rendered applications, \p Constraint may be null. With an
/// empty body and no constraint the rule degenerates to a fact:
/// "(rule <head>)".
std::string toSmtLibChcRule(const std::string &Head,
                            const std::vector<std::string> &BodyApps,
                            ExprRef Constraint);

} // namespace chute

#endif // CHUTE_SMT_SMTLIBEXPORT_H
