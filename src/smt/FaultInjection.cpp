//===- smt/FaultInjection.cpp - Deterministic SMT fault injection ----------===//

#include "smt/FaultInjection.h"

#include "support/Env.h"

#include <atomic>
#include <chrono>
#include <thread>

using namespace chute;

namespace {

std::atomic<std::uint64_t> CheckCounter{0};
std::atomic<std::uint64_t> InjectedCounter{0};

SmtFaultPlan planFromEnv() {
  // Typed readers (support/Env): a malformed value reads as unset
  // instead of atoi's silent zero-or-garbage.
  SmtFaultPlan P;
  if (std::optional<unsigned> N = envUnsigned("CHUTE_SMT_FAULT_EVERY"))
    P.UnknownEveryN = *N;
  if (std::optional<unsigned> Ms = envUnsigned("CHUTE_SMT_FAULT_DELAY_MS"))
    P.DelayMs = *Ms;
  return P;
}

} // namespace

SmtFaultPlan &chute::smtFaultPlan() {
  static SmtFaultPlan Plan = planFromEnv();
  return Plan;
}

void chute::resetSmtFaultCounter() {
  CheckCounter.store(0, std::memory_order_relaxed);
  InjectedCounter.store(0, std::memory_order_relaxed);
}

std::uint64_t chute::smtFaultInjectedCount() {
  return InjectedCounter.load(std::memory_order_relaxed);
}

bool chute::smtFaultShouldInjectUnknown() {
  const SmtFaultPlan &Plan = smtFaultPlan();
  unsigned Delay = Plan.DelayMs.load(std::memory_order_relaxed);
  if (Delay != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
  unsigned EveryN = Plan.UnknownEveryN.load(std::memory_order_relaxed);
  if (EveryN == 0)
    return false;
  std::uint64_t N =
      CheckCounter.fetch_add(1, std::memory_order_relaxed) + 1;
  if (N % EveryN != 0)
    return false;
  InjectedCounter.fetch_add(1, std::memory_order_relaxed);
  return true;
}
