//===- smt/Z3Translate.h - Expr <-> Z3 AST conversion ---------*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bidirectional translation between chute expressions and Z3 ASTs.
/// The backward direction handles the fragment Z3's tactics produce
/// for linear integer arithmetic goals and returns nullopt elsewhere.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_SMT_Z3TRANSLATE_H
#define CHUTE_SMT_Z3TRANSLATE_H

#include "expr/Expr.h"
#include "smt/Z3Context.h"

#include <optional>

namespace chute {

/// Translates \p E into a Z3 AST over the integer sort. Variables
/// become uninterpreted integer constants with matching names.
Z3_ast toZ3(Z3Context &Z3, ExprRef E);

/// Translates a Z3 AST back into a chute expression; returns nullopt
/// for constructs outside the supported LIA fragment (division,
/// if-then-else, arrays, ...).
std::optional<ExprRef> fromZ3(Z3Context &Z3, ExprContext &Ctx, Z3_ast A);

} // namespace chute

#endif // CHUTE_SMT_Z3TRANSLATE_H
