//===- smt/DiskCache.h - Disk-backed cross-run query cache ----*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Persistence for the content-addressed QueryCache: a
/// VerificationSession saves its cache's durable contents (definite
/// Sat/Unsat verdicts, QE outputs, unsat cores) on close and warm
/// starts the next run from them, so re-verifying the same program —
/// after an edit elsewhere, in CI, across ablation sweeps — skips
/// every query an earlier run already discharged.
///
/// Soundness rests on two facts. First, only verdicts that are
/// properties of the formula alone are persisted: Sat/Unsat of a
/// closed-form query and QE input/output pairs, never Unknowns
/// (which encode a timeout or budget denial of some past run, not a
/// fact). Second, expressions are rebuilt on load through the same
/// normalising ExprContext smart constructors that built them
/// originally (mk* is idempotent on its own output), so a record
/// either re-attaches to the exact hash-consed node a new run will
/// query, or rebuilds to an equivalent formula — in both cases the
/// transferred verdict is true of the node it is keyed on.
///
/// On-disk format: one text file per program key under the cache
/// directory, `qc-<key>.chute`. A versioned header carries the cache
/// schema tag and the Z3 version that produced the verdicts (a Z3
/// upgrade invalidates the file wholesale — cheap insurance against
/// solver-bug asymmetries). The body is a deduplicated expression
/// DAG (children precede parents) followed by the verdict/QE/core
/// records over node ids. Writers replace the file atomically
/// (temporary + fsync + rename) under an advisory lock; readers
/// validate everything — header, counts, node references, verdict
/// tokens — and reject the whole file on the first inconsistency,
/// falling back to a cold cache and bumping a reject counter. A
/// corrupt cache can cost time; it can never change a verdict.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_SMT_DISKCACHE_H
#define CHUTE_SMT_DISKCACHE_H

#include "smt/QueryCache.h"

#include <cstdint>
#include <string>

namespace chute {

class ExprContext;

/// Load/save activity of one DiskCache (monotone).
struct DiskCacheStats {
  std::uint64_t FilesLoaded = 0; ///< files accepted by load()
  std::uint64_t FilesSaved = 0;  ///< files written by save()
  std::uint64_t LoadRejects = 0; ///< files rejected (corrupt/mismatch)
  std::uint64_t SatLoaded = 0;   ///< Sat/Unsat records imported
  std::uint64_t QeLoaded = 0;    ///< QE records imported
  std::uint64_t CoresLoaded = 0; ///< unsat cores imported
  std::uint64_t SatSaved = 0;
  std::uint64_t QeSaved = 0;
  std::uint64_t CoresSaved = 0;

  DiskCacheStats &operator+=(const DiskCacheStats &O) {
    FilesLoaded += O.FilesLoaded;
    FilesSaved += O.FilesSaved;
    LoadRejects += O.LoadRejects;
    SatLoaded += O.SatLoaded;
    QeLoaded += O.QeLoaded;
    CoresLoaded += O.CoresLoaded;
    SatSaved += O.SatSaved;
    QeSaved += O.QeSaved;
    CoresSaved += O.CoresSaved;
    return *this;
  }
};

/// One cache directory. Stateless between calls apart from stats;
/// safe to share a directory between processes (per-file advisory
/// locks serialise load/save cycles).
class DiskCache {
public:
  /// \p Dir is created (single level) on first save if missing.
  explicit DiskCache(std::string Dir);

  const std::string &dir() const { return Directory; }

  /// Warm starts \p Cache from the file for \p ProgramKey, rebuilding
  /// expressions in \p Ctx. Returns false (leaving \p Cache cold and
  /// counting a reject where a file existed) when there is no file,
  /// the header does not match this binary's schema/Z3 version, or
  /// the contents fail validation. Never throws, never crashes on
  /// garbage input.
  bool load(const std::string &ProgramKey, ExprContext &Ctx,
            QueryCache &Cache);

  /// Serialises \p Cache's durable contents over the file for
  /// \p ProgramKey (atomic replace). Timed-out/budget-denied
  /// Unknowns are structurally absent from the snapshot.
  bool save(const std::string &ProgramKey, QueryCache &Cache);

  DiskCacheStats stats() const { return St; }

  /// Stable content key for a program: FNV-1a (64-bit, hex) of its
  /// printed form.
  static std::string programKey(const std::string &ProgramText);

  /// The file load/save use for \p ProgramKey inside \p Dir.
  static std::string filePath(const std::string &Dir,
                              const std::string &ProgramKey);

  //===-- Testing hooks ----------------------------------------------===//
  // The serialised text format, exposed so tests can corrupt it in
  // controlled ways without knowing the framing.

  static std::string serialize(const CacheSnapshot &S);

  /// Parses \p Text into \p Out (expressions built in \p Ctx).
  /// Strict: returns false on any malformation.
  static bool deserialize(const std::string &Text, ExprContext &Ctx,
                          CacheSnapshot &Out);

private:
  std::string Directory;
  DiskCacheStats St;
};

} // namespace chute

#endif // CHUTE_SMT_DISKCACHE_H
