//===- smt/DiskCache.h - Disk-backed cross-run query cache ----*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Persistence for the content-addressed QueryCache: a
/// VerificationSession saves its cache's durable contents (definite
/// Sat/Unsat verdicts, QE outputs, unsat cores) on close and warm
/// starts the next run from them, so re-verifying the same program —
/// after an edit elsewhere, in CI, across ablation sweeps — skips
/// every query an earlier run already discharged.
///
/// Soundness rests on two facts. First, only verdicts that are
/// properties of the formula alone are persisted: Sat/Unsat of a
/// closed-form query and QE input/output pairs, never Unknowns
/// (which encode a timeout or budget denial of some past run, not a
/// fact). Second, expressions are rebuilt on load through the same
/// normalising ExprContext smart constructors that built them
/// originally (mk* is idempotent on its own output), so a record
/// either re-attaches to the exact hash-consed node a new run will
/// query, or rebuilds to an equivalent formula — in both cases the
/// transferred verdict is true of the node it is keyed on.
///
/// Storage is the sharded slab store (smt/CacheStore): entries are
/// keyed by the structural hash of their formula — not by program —
/// so load() warm starts from every entry any program ever
/// discharged into the directory, and save() appends only what this
/// run newly learned. Writers append under per-slab advisory locks,
/// so concurrent sessions and a daemon sharing one directory union
/// their entries instead of clobbering each other. The legacy
/// per-program `qc-<key>.chute` files this class used to write are
/// migrated (parseable → imported, anything else → invalidated) the
/// first time the directory is opened. This class remains the
/// session-facing API: per-instance load/save accounting plus a view
/// of the shared store's slab/index/compaction counters. A corrupt
/// record on disk can cost time; it can never change a verdict.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_SMT_DISKCACHE_H
#define CHUTE_SMT_DISKCACHE_H

#include "smt/QueryCache.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace chute {

class CacheStore;
class ExprContext;

/// Load/save activity of one DiskCache (monotone). The File/Sat/Qe/
/// Core counters are per-instance; the slab-store block below them
/// reflects the directory's shared store (every DiskCache on the
/// same directory sees the same values).
struct DiskCacheStats {
  std::uint64_t FilesLoaded = 0; ///< load() calls that imported entries
  std::uint64_t FilesSaved = 0;  ///< save() calls that persisted a snapshot
  std::uint64_t LoadRejects = 0; ///< records/slabs/legacy files rejected
  std::uint64_t SatLoaded = 0;   ///< Sat/Unsat records imported
  std::uint64_t QeLoaded = 0;    ///< QE records imported
  std::uint64_t CoresLoaded = 0; ///< unsat cores imported
  std::uint64_t SatSaved = 0;
  std::uint64_t QeSaved = 0;
  std::uint64_t CoresSaved = 0;

  // Shared slab-store activity (see CacheStoreStats for semantics).
  std::uint64_t RecordsAppended = 0;
  std::uint64_t RecordsIndexed = 0;
  std::uint64_t DuplicatesSkipped = 0;
  std::uint64_t TornTailsTruncated = 0;
  std::uint64_t Compactions = 0;
  std::uint64_t CompactedBytes = 0;
  std::uint64_t LegacyImported = 0;
  std::uint64_t LegacyInvalidated = 0;
  std::uint64_t LockFailures = 0; ///< advisory locks not acquired

  DiskCacheStats &operator+=(const DiskCacheStats &O) {
    FilesLoaded += O.FilesLoaded;
    FilesSaved += O.FilesSaved;
    LoadRejects += O.LoadRejects;
    SatLoaded += O.SatLoaded;
    QeLoaded += O.QeLoaded;
    CoresLoaded += O.CoresLoaded;
    SatSaved += O.SatSaved;
    QeSaved += O.QeSaved;
    CoresSaved += O.CoresSaved;
    RecordsAppended += O.RecordsAppended;
    RecordsIndexed += O.RecordsIndexed;
    DuplicatesSkipped += O.DuplicatesSkipped;
    TornTailsTruncated += O.TornTailsTruncated;
    Compactions += O.Compactions;
    CompactedBytes += O.CompactedBytes;
    LegacyImported += O.LegacyImported;
    LegacyInvalidated += O.LegacyInvalidated;
    LockFailures += O.LockFailures;
    return *this;
  }
};

/// One cache directory, backed by its (process-shared) CacheStore.
/// Thread-safe; safe to share a directory between processes (the
/// store's per-slab advisory locks serialise writers).
class DiskCache {
public:
  /// Opens (or attaches to) \p Dir's slab store. The directory is
  /// created on first save if missing; legacy qc-* files found in an
  /// existing directory are migrated immediately.
  explicit DiskCache(std::string Dir);
  ~DiskCache();

  const std::string &dir() const { return Directory; }

  /// Warm starts \p Cache from every live entry in the store,
  /// rebuilding expressions in \p Ctx. \p ProgramKey is accepted for
  /// API compatibility but no longer selects a file — entries are
  /// keyed structurally and transfer across programs. Returns false
  /// (leaving \p Cache cold) when the store holds nothing usable;
  /// rejected records count into stats().LoadRejects. Never throws,
  /// never crashes on garbage input.
  bool load(const std::string &ProgramKey, ExprContext &Ctx,
            QueryCache &Cache);

  /// Appends \p Cache's durable contents to the store. Entries the
  /// store already holds are skipped, so a warm session persists
  /// only what it newly discharged; two concurrent savers union
  /// their entries. Returns false only on I/O failure or when the
  /// snapshot is empty.
  bool save(const std::string &ProgramKey, QueryCache &Cache);

  DiskCacheStats stats() const;

  /// The shared store (testing/checkpoint hook: compactNow()).
  CacheStore &store() { return *Store; }

  /// Stable content key for a program: FNV-1a (64-bit, hex) of its
  /// printed form. Still used by the daemon to identify program
  /// registry entries; no longer a storage address.
  static std::string programKey(const std::string &ProgramText);

  /// The legacy per-program file for \p ProgramKey inside \p Dir.
  /// Nothing writes these anymore; tests use the path to stage
  /// migration inputs.
  static std::string filePath(const std::string &Dir,
                              const std::string &ProgramKey);

  //===-- Testing hooks ----------------------------------------------===//
  // The legacy serialised text format (header + body), exposed so
  // tests can stage and corrupt migration inputs without knowing the
  // framing.

  static std::string serialize(const CacheSnapshot &S);

  /// Parses legacy \p Text into \p Out (expressions built in \p Ctx).
  /// Strict: returns false on any malformation.
  static bool deserialize(const std::string &Text, ExprContext &Ctx,
                          CacheSnapshot &Out);

private:
  std::string Directory;
  std::shared_ptr<CacheStore> Store;

  mutable std::mutex Mu; ///< guards the per-instance counters
  DiskCacheStats St;
};

} // namespace chute

#endif // CHUTE_SMT_DISKCACHE_H
