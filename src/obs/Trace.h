//===- obs/Trace.h - Structured proof-search tracing ----------*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observability for the proof search: hierarchical spans and
/// monotonic counters over every major stage of the pipeline
/// (verify dispatch, refinement rounds, universal-prover
/// obligations, recurrent-set checks, path search, quantifier
/// elimination, SMT queries), aggregated across TaskPool workers.
///
/// Design:
///
///  - A process-global Tracer with three levels. Off records
///    nothing: Span construction is a single relaxed atomic load and
///    every other entry point checks the same flag first, so the
///    instrumented hot paths cost one predictable branch when
///    tracing is disabled. Stats accumulates per-category span
///    counts/durations and counters only (no per-event storage, no
///    allocation on the span path). Full additionally records every
///    span as an event for Chrome trace export.
///
///  - Per-thread buffers: each thread that opens a span or bumps a
///    counter owns a ThreadBuf registered with the tracer. Counters
///    and category aggregates are relaxed atomics written only by
///    the owning thread; events are appended under a per-buffer
///    mutex that is uncontended except while a snapshot/export is
///    reading. Buffers outlive their threads (the registry holds a
///    shared_ptr), so TaskPool workers' spans survive into the
///    export.
///
///  - Spans are RAII and close on any exit path, including the
///    cooperative budget/cancellation unwind to Verdict::Unknown —
///    there is no failure mode that leaves a span open short of
///    process death.
///
/// Exporters: a chrome://tracing-compatible JSON file (see
/// ChromeTrace.h) with one lane per thread (TaskPool workers are
/// named "worker-N"), and a compact TraceSummary embedded into
/// VerifyResult and the bench harness JSON rows (see
/// TraceSummary.h).
///
/// Knobs: CHUTE_TRACE=<path> enables Full tracing and writes the
/// Chrome trace to <path> at process exit; CHUTE_TRACE_STATS=1
/// enables Stats. The bench harness adds --trace-out and always
/// runs rows at Stats level so BENCH_*.json rows carry phase
/// breakdowns.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_OBS_TRACE_H
#define CHUTE_OBS_TRACE_H

#include "obs/TraceSummary.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace chute::obs {

/// How much the tracer records.
enum class TraceLevel : std::uint8_t {
  Off = 0,   ///< nothing (the default; spans are no-ops)
  Stats = 1, ///< counters and per-category aggregates only
  Full = 2,  ///< Stats plus per-span events for Chrome export
};

/// One closed span, as stored for Chrome export (Full level only).
struct SpanEvent {
  Category Cat = Category::Verify;
  const char *Name = "";    ///< static string (span site)
  const char *Outcome = ""; ///< static string ("" when unset)
  std::string Detail;       ///< optional free-form (formula, round)
  std::uint64_t StartUs = 0; ///< relative to the tracer epoch
  std::uint64_t DurUs = 0;
  std::int64_t BudgetRemainMs = -1; ///< at close; -1 = no budget
  unsigned Depth = 0;               ///< nesting depth on this thread
};

/// Per-thread recording buffer. Counters and aggregates are written
/// only by the owning thread (relaxed atomics, exact because every
/// reader synchronises with the writers via joins/barriers before
/// reading); Events is guarded by Mu.
struct ThreadBuf {
  unsigned Lane = 0; ///< stable per-thread lane id (tid in the trace)
  std::string Name;  ///< "main", "worker-N", or "thread-N"

  std::atomic<std::uint64_t> Counters[NumCounters] = {};
  std::atomic<std::uint64_t> CatSpans[NumCategories] = {};
  std::atomic<std::uint64_t> CatMicros[NumCategories] = {};

  std::mutex Mu;
  std::vector<SpanEvent> Events;
  /// Events beyond this cap are dropped (Counter::SpansDropped).
  static constexpr std::size_t MaxEvents = 1u << 20;
};

/// The process-global trace collector.
class Tracer {
public:
  Tracer();

  static Tracer &global();

  TraceLevel level() const { return Lvl.load(std::memory_order_relaxed); }
  bool enabled() const { return level() != TraceLevel::Off; }

  /// Enables tracing at \p L. For Full, \p ChromePath (may be empty)
  /// is remembered and written by exportConfigured() / at normal
  /// process exit. Names the calling thread "main" if it has no name
  /// yet.
  void enable(TraceLevel L, std::string ChromePath = "");

  /// Raises Off to Stats; never lowers an existing level.
  void ensureStats();

  void disable() { Lvl.store(TraceLevel::Off, std::memory_order_relaxed); }

  /// Path configured via enable() or CHUTE_TRACE ("" when none).
  std::string chromePath() const;

  /// Writes the Chrome trace to the configured path, if any.
  /// Returns false when no path is configured or the write failed.
  bool exportConfigured();

  /// Aggregated counters and per-category stats across all threads.
  TraceSummary snapshot() const;

  /// Drops every recorded event and zeroes all counters/aggregates
  /// (thread registrations and lane ids are kept). For tests and for
  /// the bench harness child after fork.
  void reset();

  /// Registers/returns the calling thread's buffer (creates and
  /// registers it on first use).
  ThreadBuf &thisThread();

  /// Names the calling thread's lane in the exported trace.
  void nameThisThread(std::string Name);

  /// Nesting depth of open spans on the calling thread (tests).
  static unsigned currentDepth();

  /// All registered buffers, for the exporters. The vector grows
  /// only; buffers are never removed.
  std::vector<std::shared_ptr<ThreadBuf>> buffers() const;

  /// Microseconds since the tracer epoch (process-lifetime clock).
  std::uint64_t nowUs() const;

private:
  std::atomic<TraceLevel> Lvl{TraceLevel::Off};

  mutable std::mutex Mu; ///< guards Bufs, Path, NextLane
  std::vector<std::shared_ptr<ThreadBuf>> Bufs;
  std::string Path;
  unsigned NextLane = 0;
  std::atomic<bool> AtExitArmed{false};
};

/// Bumps a monotonic counter on the calling thread's buffer. A
/// relaxed-load no-op when tracing is Off.
void bump(Counter C, std::uint64_t N = 1);

/// Names the calling thread's trace lane (used by TaskPool workers).
/// Safe to call whether or not tracing is enabled.
void nameThisThread(std::string Name);

/// RAII hierarchical span. Construction snapshots the start time and
/// nesting depth; destruction (or close()) folds the duration into
/// the per-category aggregates and, at Full level, records an event.
class Span {
public:
  Span(Category Cat, const char *Name);
  ~Span() { close(); }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// True when the span is recording (tracing was on at open).
  bool active() const { return Buf != nullptr; }

  /// True when per-event details are worth building (Full level).
  bool detailed() const { return Detailed; }

  /// Attaches free-form context (formula text, round number).
  /// Recorded only at Full level; guard expensive formatting with
  /// detailed().
  void setDetail(std::string D);

  /// Labels how the spanned stage ended ("proved", "sat",
  /// "cache-hit", "budget-denied", ...). \p O must be a static
  /// string.
  void setOutcome(const char *O) { Outcome = O; }

  /// Records the governing budget's remaining time, captured at
  /// close (-1 = unlimited / none).
  void setBudgetRemainingMs(std::int64_t Ms) { BudgetRemainMs = Ms; }

  /// Closes the span now (idempotent; the destructor calls it).
  void close();

private:
  ThreadBuf *Buf = nullptr;
  Category Cat = Category::Verify;
  const char *Name = "";
  const char *Outcome = "";
  std::string Detail;
  std::uint64_t StartUs = 0;
  std::int64_t BudgetRemainMs = -1;
  unsigned Depth = 0;
  bool Detailed = false;
};

} // namespace chute::obs

#endif // CHUTE_OBS_TRACE_H
