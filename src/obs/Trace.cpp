//===- obs/Trace.cpp - Structured proof-search tracing ------------------===//

#include "obs/Trace.h"

#include "obs/ChromeTrace.h"
#include "support/Env.h"

#include <chrono>

using namespace chute;
using namespace chute::obs;

namespace {

using Clock = std::chrono::steady_clock;

/// One epoch per process, fixed at tracer construction so event
/// timestamps from every thread share a base.
Clock::time_point &epoch() {
  static Clock::time_point E = Clock::now();
  return E;
}

/// Open-span nesting depth of the calling thread.
thread_local unsigned TlsDepth = 0;

/// The calling thread's registered buffer (shared ownership with the
/// tracer registry, so the buffer outlives the thread).
thread_local std::shared_ptr<ThreadBuf> TlsBuf;

void exportAtExit() { Tracer::global().exportConfigured(); }

} // namespace

Tracer::Tracer() {
  // Knobs: CHUTE_TRACE=<path> turns on Full tracing with a Chrome
  // trace written at process exit; CHUTE_TRACE_STATS turns on Stats.
  // Read through the support/Env helpers so "set", "empty" and "off"
  // mean exactly what resolveEnvOverrides makes them mean.
  if (std::optional<std::string> Path = envString("CHUTE_TRACE"))
    enable(TraceLevel::Full, *Path);
  else if (envFlag("CHUTE_TRACE_STATS").value_or(false))
    enable(TraceLevel::Stats);
}

Tracer &Tracer::global() {
  // Deliberately immortal (never destroyed): the atexit exporter is
  // registered during construction, so a plain static would be torn
  // down before the exporter runs; late spans from worker threads
  // during shutdown must stay safe too.
  static Tracer *T = new Tracer();
  return *T;
}

std::uint64_t Tracer::nowUs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            epoch())
          .count());
}

ThreadBuf &Tracer::thisThread() {
  if (TlsBuf)
    return *TlsBuf;
  auto Buf = std::make_shared<ThreadBuf>();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Buf->Lane = NextLane++;
    Buf->Name = "thread-" + std::to_string(Buf->Lane);
    Bufs.push_back(Buf);
  }
  TlsBuf = std::move(Buf);
  return *TlsBuf;
}

void Tracer::nameThisThread(std::string Name) {
  ThreadBuf &Buf = thisThread();
  // Names are guarded by the per-buffer mutex (the exporter reads
  // them under the same lock).
  std::lock_guard<std::mutex> Lock(Buf.Mu);
  Buf.Name = std::move(Name);
}

unsigned Tracer::currentDepth() { return TlsDepth; }

std::vector<std::shared_ptr<ThreadBuf>> Tracer::buffers() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Bufs;
}

void Tracer::enable(TraceLevel L, std::string ChromePath) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Path = std::move(ChromePath);
  }
  // The first thread to enable tracing is the driver: give its lane
  // a meaningful default name (workers rename theirs explicitly).
  ThreadBuf &Buf = thisThread();
  {
    std::lock_guard<std::mutex> Lock(Buf.Mu);
    if (Buf.Name.rfind("thread-", 0) == 0)
      Buf.Name = "main";
  }
  Lvl.store(L, std::memory_order_relaxed);
  if (L == TraceLevel::Full && !chromePath().empty() &&
      !AtExitArmed.exchange(true))
    std::atexit(exportAtExit);
}

void Tracer::ensureStats() {
  if (level() == TraceLevel::Off)
    enable(TraceLevel::Stats);
}

std::string Tracer::chromePath() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Path;
}

bool Tracer::exportConfigured() {
  std::string P = chromePath();
  if (P.empty())
    return false;
  return writeChromeTrace(*this, P);
}

TraceSummary Tracer::snapshot() const {
  TraceSummary Sum;
  for (const std::shared_ptr<ThreadBuf> &Buf : buffers()) {
    for (unsigned I = 0; I < NumCategories; ++I) {
      Sum.Categories[I].Spans +=
          Buf->CatSpans[I].load(std::memory_order_relaxed);
      Sum.Categories[I].Micros +=
          Buf->CatMicros[I].load(std::memory_order_relaxed);
    }
    for (unsigned I = 0; I < NumCounters; ++I)
      Sum.Counters[I] += Buf->Counters[I].load(std::memory_order_relaxed);
  }
  return Sum;
}

void Tracer::reset() {
  for (const std::shared_ptr<ThreadBuf> &Buf : buffers()) {
    for (unsigned I = 0; I < NumCategories; ++I) {
      Buf->CatSpans[I].store(0, std::memory_order_relaxed);
      Buf->CatMicros[I].store(0, std::memory_order_relaxed);
    }
    for (unsigned I = 0; I < NumCounters; ++I)
      Buf->Counters[I].store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(Buf->Mu);
    Buf->Events.clear();
  }
}

void chute::obs::bump(Counter C, std::uint64_t N) {
  Tracer &T = Tracer::global();
  if (!T.enabled())
    return;
  T.thisThread().Counters[static_cast<unsigned>(C)].fetch_add(
      N, std::memory_order_relaxed);
}

void chute::obs::nameThisThread(std::string Name) {
  Tracer::global().nameThisThread(std::move(Name));
}

Span::Span(Category C, const char *SpanName) {
  Tracer &T = Tracer::global();
  TraceLevel L = T.level();
  if (L == TraceLevel::Off)
    return;
  Buf = &T.thisThread();
  Cat = C;
  Name = SpanName;
  Detailed = L == TraceLevel::Full;
  StartUs = T.nowUs();
  Depth = TlsDepth++;
}

void Span::setDetail(std::string D) {
  if (Detailed)
    Detail = std::move(D);
}

void Span::close() {
  if (Buf == nullptr)
    return;
  Tracer &T = Tracer::global();
  std::uint64_t Dur = T.nowUs() - StartUs;
  --TlsDepth;

  unsigned C = static_cast<unsigned>(Cat);
  Buf->CatSpans[C].fetch_add(1, std::memory_order_relaxed);
  Buf->CatMicros[C].fetch_add(Dur, std::memory_order_relaxed);

  if (Detailed) {
    std::lock_guard<std::mutex> Lock(Buf->Mu);
    if (Buf->Events.size() < ThreadBuf::MaxEvents) {
      SpanEvent &E = Buf->Events.emplace_back();
      E.Cat = Cat;
      E.Name = Name;
      E.Outcome = Outcome;
      E.Detail = std::move(Detail);
      E.StartUs = StartUs;
      E.DurUs = Dur;
      E.BudgetRemainMs = BudgetRemainMs;
      E.Depth = Depth;
    } else {
      Buf->Counters[static_cast<unsigned>(Counter::SpansDropped)]
          .fetch_add(1, std::memory_order_relaxed);
    }
  }
  Buf = nullptr;
}
