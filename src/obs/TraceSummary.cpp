//===- obs/TraceSummary.cpp - Compact per-verify trace summary ----------===//

#include "obs/TraceSummary.h"

using namespace chute::obs;

const char *chute::obs::toString(Category C) {
  switch (C) {
  case Category::Verify:
    return "verify";
  case Category::Refine:
    return "refine";
  case Category::Universal:
    return "universal";
  case Category::Rcr:
    return "rcr";
  case Category::PathSearch:
    return "path_search";
  case Category::Qe:
    return "qe";
  case Category::Smt:
    return "smt";
  case Category::Synth:
    return "synth";
  case Category::Chc:
    return "chc";
  }
  return "?";
}

const char *chute::obs::toString(Counter C) {
  switch (C) {
  case Counter::SmtQueries:
    return "smt_queries";
  case Counter::SmtSat:
    return "smt_sat";
  case Counter::SmtUnsat:
    return "smt_unsat";
  case Counter::SmtUnknown:
    return "smt_unknown";
  case Counter::SmtCacheHits:
    return "smt_cache_hits";
  case Counter::SmtCacheMisses:
    return "smt_cache_misses";
  case Counter::SmtRetries:
    return "smt_retries";
  case Counter::SmtBudgetDenied:
    return "smt_budget_denied";
  case Counter::QeFourierMotzkin:
    return "qe_fm";
  case Counter::QeZ3Tactic:
    return "qe_z3";
  case Counter::QeFailures:
    return "qe_failures";
  case Counter::Obligations:
    return "obligations";
  case Counter::RefineRounds:
    return "refine_rounds";
  case Counter::RcrChecks:
    return "rcr_checks";
  case Counter::RcrFailures:
    return "rcr_failures";
  case Counter::PathSearches:
    return "path_searches";
  case Counter::SpansDropped:
    return "spans_dropped";
  case Counter::SmtIncChecks:
    return "smt_inc_checks";
  case Counter::SmtIncFallbacks:
    return "smt_inc_fallbacks";
  case Counter::SmtIncCorePruned:
    return "smt_inc_core_pruned";
  case Counter::SmtIncResets:
    return "smt_inc_resets";
  case Counter::SmtDiskLoaded:
    return "smt_disk_loaded";
  case Counter::SmtDiskWarmHits:
    return "smt_disk_warm_hits";
  case Counter::SmtDiskRejects:
    return "smt_disk_rejects";
  case Counter::SmtDiskAppended:
    return "smt_disk_appended";
  case Counter::SmtDiskIndexed:
    return "smt_disk_indexed";
  case Counter::SmtDiskTorn:
    return "smt_disk_torn";
  case Counter::SmtDiskCompactions:
    return "smt_disk_compactions";
  case Counter::SpecLaunched:
    return "spec_launched";
  case Counter::SpecWon:
    return "spec_won";
  case Counter::SpecCancelled:
    return "spec_cancelled";
  case Counter::ChcQueries:
    return "chc_queries";
  case Counter::ChcRules:
    return "chc_rules";
  case Counter::ChcInterrupts:
    return "chc_interrupts";
  case Counter::PortfolioRaces:
    return "pf_races";
  case Counter::PortfolioChuteWins:
    return "pf_chute_wins";
  case Counter::PortfolioChcWins:
    return "pf_chc_wins";
  case Counter::PortfolioCancelled:
    return "pf_cancelled";
  case Counter::PortfolioDisagreed:
    return "pf_disagreed";
  }
  return "?";
}

bool TraceSummary::empty() const {
  for (const CategoryStats &S : Categories)
    if (S.Spans != 0 || S.Micros != 0)
      return false;
  for (std::uint64_t C : Counters)
    if (C != 0)
      return false;
  return true;
}

TraceSummary &TraceSummary::operator+=(const TraceSummary &O) {
  for (unsigned I = 0; I < NumCategories; ++I) {
    Categories[I].Spans += O.Categories[I].Spans;
    Categories[I].Micros += O.Categories[I].Micros;
  }
  for (unsigned I = 0; I < NumCounters; ++I)
    Counters[I] += O.Counters[I];
  return *this;
}

TraceSummary TraceSummary::operator-(const TraceSummary &O) const {
  auto Sat = [](std::uint64_t A, std::uint64_t B) {
    return A > B ? A - B : 0;
  };
  TraceSummary D;
  for (unsigned I = 0; I < NumCategories; ++I) {
    D.Categories[I].Spans = Sat(Categories[I].Spans, O.Categories[I].Spans);
    D.Categories[I].Micros =
        Sat(Categories[I].Micros, O.Categories[I].Micros);
  }
  for (unsigned I = 0; I < NumCounters; ++I)
    D.Counters[I] = Sat(Counters[I], O.Counters[I]);
  return D;
}

std::string TraceSummary::toJsonFields() const {
  std::string Out;
  Out.reserve(256);
  for (unsigned I = 0; I < NumCategories; ++I) {
    const char *N = toString(static_cast<Category>(I));
    if (!Out.empty())
      Out += ',';
    Out += "\"us_";
    Out += N;
    Out += "\":";
    Out += std::to_string(Categories[I].Micros);
    Out += ",\"spans_";
    Out += N;
    Out += "\":";
    Out += std::to_string(Categories[I].Spans);
  }
  for (unsigned I = 0; I < NumCounters; ++I) {
    if (Counters[I] == 0)
      continue;
    Out += ",\"ctr_";
    Out += toString(static_cast<Counter>(I));
    Out += "\":";
    Out += std::to_string(Counters[I]);
  }
  return Out;
}
