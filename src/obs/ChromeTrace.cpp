//===- obs/ChromeTrace.cpp - chrome://tracing JSON export ---------------===//

#include "obs/ChromeTrace.h"

#include "obs/Trace.h"

#include <cstdio>

using namespace chute;
using namespace chute::obs;

std::string chute::obs::jsonEscape(const std::string &In) {
  std::string Out;
  Out.reserve(In.size() + 8);
  for (char C : In) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else {
      Out += C;
    }
  }
  return Out;
}

namespace {

void appendEvent(std::string &Out, const SpanEvent &E, unsigned Lane,
                 bool &First) {
  if (!First)
    Out += ",\n";
  First = false;
  Out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
  Out += std::to_string(Lane);
  Out += ",\"ts\":";
  Out += std::to_string(E.StartUs);
  Out += ",\"dur\":";
  Out += std::to_string(E.DurUs);
  Out += ",\"name\":\"";
  Out += jsonEscape(E.Name);
  Out += "\",\"cat\":\"";
  Out += toString(E.Cat);
  Out += "\",\"args\":{\"depth\":";
  Out += std::to_string(E.Depth);
  if (E.Outcome != nullptr && E.Outcome[0] != '\0') {
    Out += ",\"outcome\":\"";
    Out += jsonEscape(E.Outcome);
    Out += '"';
  }
  if (!E.Detail.empty()) {
    Out += ",\"detail\":\"";
    Out += jsonEscape(E.Detail);
    Out += '"';
  }
  if (E.BudgetRemainMs >= 0) {
    Out += ",\"budget_remain_ms\":";
    Out += std::to_string(E.BudgetRemainMs);
  }
  Out += "}}";
}

} // namespace

std::string chute::obs::chromeTraceJson(const Tracer &T) {
  std::string Out;
  Out.reserve(1 << 16);
  Out += "{\"traceEvents\":[\n";
  bool First = true;

  Out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"chute\"}}";
  First = false;

  std::vector<std::shared_ptr<ThreadBuf>> Bufs = T.buffers();
  for (const std::shared_ptr<ThreadBuf> &Buf : Bufs) {
    std::string Name;
    {
      // The registry lock (inside buffers()) is already released;
      // the per-buffer lock covers Name updates racing with export.
      std::lock_guard<std::mutex> Lock(Buf->Mu);
      Name = Buf->Name;
    }
    Out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
    Out += std::to_string(Buf->Lane);
    Out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    Out += jsonEscape(Name);
    Out += "\"}}";
  }

  for (const std::shared_ptr<ThreadBuf> &Buf : Bufs) {
    std::lock_guard<std::mutex> Lock(Buf->Mu);
    for (const SpanEvent &E : Buf->Events)
      appendEvent(Out, E, Buf->Lane, First);
  }

  Out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return Out;
}

bool chute::obs::writeChromeTrace(const Tracer &T,
                                  const std::string &Path) {
  std::string Json = chromeTraceJson(T);
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (F == nullptr)
    return false;
  std::size_t N = std::fwrite(Json.data(), 1, Json.size(), F);
  bool Ok = N == Json.size();
  return std::fclose(F) == 0 && Ok;
}
