//===- obs/TraceSummary.h - Compact per-verify trace summary --*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The span taxonomy (Category), the monotonic counter set
/// (Counter), and TraceSummary — the compact aggregate a verify()
/// run carries back in VerifyResult and the bench harness embeds
/// into its JSON rows. Kept free of tracer internals so result
/// types can include it without pulling in the collector.
///
/// TraceSummary is trivially copyable on purpose: the bench harness
/// ships it from the forked child to the parent over a pipe as raw
/// bytes.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_OBS_TRACESUMMARY_H
#define CHUTE_OBS_TRACESUMMARY_H

#include <array>
#include <cstdint>
#include <string>
#include <type_traits>

namespace chute::obs {

/// Span taxonomy: which stage of the pipeline a span covers. One
/// Chrome-trace category per value.
enum class Category : std::uint8_t {
  Verify,     ///< Verifier: whole runs and per-direction attempts
  Refine,     ///< ChuteRefiner: Figure 4 rounds, backtracking
  Universal,  ///< UniversalProver: per-subformula obligations
  Rcr,        ///< recurrent-set checks (Definition 3.2, cycles)
  PathSearch, ///< counterexample path/lasso search
  Qe,         ///< quantifier-elimination projections
  Smt,        ///< individual solver queries and qe tactic calls
  Synth,      ///< SYNTHcp chute-candidate synthesis
  Chc,        ///< Horn-clause encoding / Spacer discharge
};
inline constexpr unsigned NumCategories = 9;

const char *toString(Category C);

/// Monotonic counters, aggregated across all worker threads.
enum class Counter : std::uint8_t {
  SmtQueries,      ///< satisfiability checks issued (cache included)
  SmtSat,          ///< definite Sat answers
  SmtUnsat,        ///< definite Unsat answers
  SmtUnknown,      ///< Unknown after the full retry schedule
  SmtCacheHits,    ///< answered from the QueryCache
  SmtCacheMisses,  ///< cacheable queries that went to the solver
  SmtRetries,      ///< re-runs scheduled for Unknown answers
  SmtBudgetDenied, ///< refused: budget already expired
  QeFourierMotzkin, ///< projections answered by Fourier-Motzkin
  QeZ3Tactic,       ///< projections sent to Z3's qe tactic
  QeFailures,       ///< projections no engine could answer
  Obligations,   ///< UniversalProver::prove obligations dispatched
  RefineRounds,  ///< chute-refinement rounds started
  RcrChecks,     ///< recurrent-set obligations checked
  RcrFailures,   ///< recurrent-set obligations that failed
  PathSearches,  ///< path/lasso searches started
  SpansDropped,  ///< events discarded by the per-thread cap
  SmtIncChecks,     ///< checks answered on a persistent session
  SmtIncFallbacks,  ///< session Unknowns retried on fresh solvers
  SmtIncCorePruned, ///< queries answered by a cached unsat core
  SmtIncResets,     ///< session frames torn down (capacity/error)
  SmtDiskLoaded,    ///< warm entries imported from the disk cache
  SmtDiskWarmHits,  ///< queries answered by an imported entry
  SmtDiskRejects,   ///< disk-cache records/slabs rejected (corrupt/mismatch)
  SmtDiskAppended,  ///< records appended to the slab store
  SmtDiskIndexed,   ///< records accepted into the slab index
  SmtDiskTorn,      ///< torn slab tails truncated during recovery
  SmtDiskCompactions, ///< slab compaction rewrites completed
  SpecLaunched,     ///< speculative proof lanes fanned out
  SpecWon,          ///< refinement rounds decided by a lane
  SpecCancelled,    ///< lanes shot or skipped by a winning sibling
  ChcQueries,       ///< Spacer fixedpoint queries run
  ChcRules,         ///< Horn rules added across CHC systems
  ChcInterrupts,    ///< Spacer queries cut short by cancellation
  PortfolioRaces,      ///< prove() calls raced across two lanes
  PortfolioChuteWins,  ///< races decided by the chute lane
  PortfolioChcWins,    ///< races decided by the chc lane
  PortfolioCancelled,  ///< loser lanes shot before finishing
  PortfolioDisagreed,  ///< opposing definite verdicts (hard error)
};
inline constexpr unsigned NumCounters = 39;

const char *toString(Counter C);

/// Aggregate of one span category.
struct CategoryStats {
  std::uint64_t Spans = 0;  ///< spans closed
  std::uint64_t Micros = 0; ///< total wall time inside them
};

/// Compact, trivially-copyable aggregate of a tracing window:
/// per-category span counts/durations plus all counters. Obtained
/// from Tracer::snapshot(); two snapshots subtract to the activity
/// between them.
struct TraceSummary {
  std::array<CategoryStats, NumCategories> Categories{};
  std::array<std::uint64_t, NumCounters> Counters{};

  const CategoryStats &of(Category C) const {
    return Categories[static_cast<unsigned>(C)];
  }
  std::uint64_t count(Counter C) const {
    return Counters[static_cast<unsigned>(C)];
  }

  /// True when nothing was recorded (tracing off or no activity).
  bool empty() const;

  TraceSummary &operator+=(const TraceSummary &O);

  /// Counter-wise difference (saturating at zero), for
  /// snapshot-delta accounting around one verify() run.
  TraceSummary operator-(const TraceSummary &O) const;

  /// Phase breakdown as JSON object fields without braces, e.g.
  ///   "us_verify":1234,"spans_verify":2,...,"ctr_smt_queries":57
  /// Categories are always present (stable keys for trend tooling);
  /// counters only when nonzero.
  std::string toJsonFields() const;
};

static_assert(std::is_trivially_copyable_v<TraceSummary>,
              "TraceSummary crosses the bench harness pipe as bytes");

} // namespace chute::obs

#endif // CHUTE_OBS_TRACESUMMARY_H
