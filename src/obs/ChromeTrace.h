//===- obs/ChromeTrace.h - chrome://tracing JSON export -------*- C++ -*-===//
//
// Part of the chute project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialises the tracer's recorded spans into the Chrome Trace
/// Event Format (the JSON accepted by chrome://tracing and
/// https://ui.perfetto.dev): one complete ("ph":"X") event per span
/// with its category, microsecond timestamps, outcome/detail/budget
/// args, plus thread_name metadata events so every TaskPool worker
/// gets a labelled lane.
///
//===----------------------------------------------------------------------===//

#ifndef CHUTE_OBS_CHROMETRACE_H
#define CHUTE_OBS_CHROMETRACE_H

#include <string>

namespace chute::obs {

class Tracer;

/// The whole trace as one JSON document:
///   {"traceEvents":[...],"displayTimeUnit":"ms"}
std::string chromeTraceJson(const Tracer &T);

/// Writes chromeTraceJson(T) to \p Path. Returns false on I/O error.
bool writeChromeTrace(const Tracer &T, const std::string &Path);

/// Escapes a string for embedding inside JSON quotes.
std::string jsonEscape(const std::string &In);

} // namespace chute::obs

#endif // CHUTE_OBS_CHROMETRACE_H
